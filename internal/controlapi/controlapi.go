// Package controlapi implements the Homework router's control API NOX
// module: "a simple RESTful web interface to the router, invoked to
// exercise control over connected devices: by the Linux udev subsystem
// when a suitably formatted USB storage device is inserted; and directly
// by the various graphical control interfaces."
//
// Endpoints (JSON unless noted):
//
//	GET    /api/status                router identity and module health
//	GET    /api/devices               every device the DHCP server knows
//	POST   /api/devices/{mac}/permit  admit a device (Figure 3 drag)
//	POST   /api/devices/{mac}/deny    refuse a device and revoke its lease
//	POST   /api/devices/{mac}/annotate  attach user metadata (body: text)
//	GET    /api/policies              installed cartoon policies
//	POST   /api/policies              install a policy (body: policy JSON)
//	DELETE /api/policies/{name}       remove a policy
//	POST   /api/keys/{id}/insert      simulate/register USB key insertion
//	POST   /api/keys/{id}/remove      USB key removal
//	GET    /api/access/{mac}          effective restriction for a device
//	GET    /api/trace                 punt-lifecycle per-stage latency summary
//	GET    /api/replay/{table}        retained table history (text/plain;
//	                                  ?from=&to= unix nanoseconds)
//
// Concurrency: the API holds no mutable state of its own. Each request
// runs on its own HTTP-server goroutine and delegates to the DHCP server
// and policy engine, which synchronize internally, so requests may race
// each other and the controller's dispatch freely.
package controlapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dhcp"
	"repro/internal/nox"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/trace"
)

// API is the control API module.
type API struct {
	DHCP     *dhcp.Server
	Policy   *policy.Engine
	RouterIP packet.IP4
	// OnChange, when set, runs after any control operation that changes
	// enforcement state (used to flush datapath flows).
	OnChange func()
	// Trace, when set, supplies the router's punt-lifecycle per-stage
	// latency summaries for GET /api/trace (the hwctl trace view). The
	// router wires it to its tracer; nil serves an empty list.
	Trace func() []trace.StageStats
	// Replay, when set, renders a table's retained history between two
	// instants (zero bounds open) as tabular text for GET /api/replay —
	// the hwctl replay view. The router wires it to its hwdb History;
	// nil answers 404.
	Replay func(table string, from, to time.Time) (string, error)

	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// New builds the API around the DHCP server and policy engine.
func New(dhcpSrv *dhcp.Server, eng *policy.Engine, routerIP packet.IP4) *API {
	a := &API{DHCP: dhcpSrv, Policy: eng, RouterIP: routerIP}
	a.mux = http.NewServeMux()
	a.routes()
	return a
}

// Name implements nox.Component.
func (a *API) Name() string { return "control-api" }

// Configure implements nox.Component (the API needs no datapath events).
func (a *API) Configure(*nox.Controller) error { return nil }

// Handler returns the HTTP handler (for tests via httptest).
func (a *API) Handler() http.Handler { return a.mux }

// ListenAndServe starts the API on addr ("127.0.0.1:0" for an ephemeral
// port) and returns immediately.
func (a *API) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = a.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address.
func (a *API) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close shuts the server down.
func (a *API) Close() error {
	if a.srv == nil {
		return nil
	}
	return a.srv.Close()
}

func (a *API) changed() {
	if a.OnChange != nil {
		a.OnChange()
	}
}

// deviceJSON is the wire form of a device record.
type deviceJSON struct {
	MAC      string `json:"mac"`
	Hostname string `json:"hostname,omitempty"`
	Metadata string `json:"metadata,omitempty"`
	State    string `json:"state"`
	IP       string `json:"ip,omitempty"`
	LeasedAt string `json:"leased_at,omitempty"`
	Expiry   string `json:"expiry,omitempty"`
}

func toDeviceJSON(d dhcp.Device) deviceJSON {
	out := deviceJSON{
		MAC: d.MAC.String(), Hostname: d.Hostname, Metadata: d.Metadata,
		State: d.State.String(),
	}
	if !d.IP.IsZero() {
		out.IP = d.IP.String()
	}
	if !d.LeasedAt.IsZero() {
		out.LeasedAt = d.LeasedAt.UTC().Format(time.RFC3339)
	}
	if !d.Expiry.IsZero() {
		out.Expiry = d.Expiry.UTC().Format(time.RFC3339)
	}
	return out
}

func (a *API) routes() {
	a.mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"router":   a.RouterIP.String(),
			"devices":  len(a.DHCP.Devices()),
			"policies": len(a.Policy.Policies()),
		})
	})

	a.mux.HandleFunc("GET /api/trace", func(w http.ResponseWriter, r *http.Request) {
		stats := []trace.StageStats{}
		if a.Trace != nil {
			stats = a.Trace()
		}
		writeJSON(w, http.StatusOK, stats)
	})

	a.mux.HandleFunc("GET /api/replay/{table}", func(w http.ResponseWriter, r *http.Request) {
		if a.Replay == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("replay not available"))
			return
		}
		parseTS := func(key string) (time.Time, error) {
			v := r.URL.Query().Get(key)
			if v == "" {
				return time.Time{}, nil
			}
			n, err := strconv.ParseInt(strings.TrimPrefix(v, "@"), 10, 64)
			if err != nil {
				return time.Time{}, fmt.Errorf("bad %s timestamp %q", key, v)
			}
			return time.Unix(0, n), nil
		}
		from, err := parseTS("from")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		to, err := parseTS("to")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		text, err := a.Replay(r.PathValue("table"), from, to)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, text)
	})

	a.mux.HandleFunc("GET /api/devices", func(w http.ResponseWriter, r *http.Request) {
		devices := a.DHCP.Devices()
		out := make([]deviceJSON, len(devices))
		for i, d := range devices {
			out[i] = toDeviceJSON(d)
		}
		writeJSON(w, http.StatusOK, out)
	})

	a.mux.HandleFunc("POST /api/devices/{mac}/permit", a.deviceAction(func(mac packet.MAC, _ string) error {
		a.DHCP.Permit(mac)
		return nil
	}))
	a.mux.HandleFunc("POST /api/devices/{mac}/deny", a.deviceAction(func(mac packet.MAC, _ string) error {
		a.DHCP.Deny(mac)
		return nil
	}))
	a.mux.HandleFunc("POST /api/devices/{mac}/annotate", a.deviceAction(func(mac packet.MAC, body string) error {
		a.DHCP.Annotate(mac, strings.TrimSpace(body))
		return nil
	}))

	a.mux.HandleFunc("GET /api/access/{mac}", func(w http.ResponseWriter, r *http.Request) {
		mac, err := packet.ParseMAC(r.PathValue("mac"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		acc := a.Policy.AccessFor(mac)
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"governed":        acc.Governed,
			"network_allowed": acc.NetworkAllowed,
			"allowed_sites":   acc.AllowedSites,
			"reason":          acc.Reason,
		})
	})

	a.mux.HandleFunc("GET /api/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, a.Policy.Policies())
	})

	a.mux.HandleFunc("POST /api/policies", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		p, err := policy.ParsePolicy(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := a.Policy.Install(p); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		a.changed()
		writeJSON(w, http.StatusCreated, p)
	})

	a.mux.HandleFunc("DELETE /api/policies/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !a.Policy.Remove(r.PathValue("name")) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no such policy"))
			return
		}
		a.changed()
		writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
	})

	a.mux.HandleFunc("POST /api/keys/{id}/insert", func(w http.ResponseWriter, r *http.Request) {
		a.Policy.InsertKey(r.PathValue("id"))
		a.changed()
		writeJSON(w, http.StatusOK, map[string]string{"status": "inserted"})
	})

	a.mux.HandleFunc("POST /api/keys/{id}/remove", func(w http.ResponseWriter, r *http.Request) {
		a.Policy.RemoveKey(r.PathValue("id"))
		a.changed()
		writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
	})
}

// deviceAction wraps a {mac}-keyed mutation endpoint.
func (a *API) deviceAction(fn func(mac packet.MAC, body string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mac, err := packet.ParseMAC(r.PathValue("mac"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		body, _ := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
		if err := fn(mac, string(body)); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		a.changed()
		dev, _ := a.DHCP.Lookup(mac)
		writeJSON(w, http.StatusOK, toDeviceJSON(dev))
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
