package controlapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dhcp"
	"repro/internal/packet"
	"repro/internal/policy"
)

func testAPI(t *testing.T) (*API, *dhcp.Server, *policy.Engine, *httptest.Server) {
	t.Helper()
	clk := clock.NewSimulated()
	srv := dhcp.NewServer(dhcp.Config{
		ServerIP:  packet.MustIP4("192.168.1.1"),
		ServerMAC: packet.MustMAC("02:01:00:00:00:01"),
		PoolStart: packet.MustIP4("192.168.1.10"),
		PoolEnd:   packet.MustIP4("192.168.1.250"),
		LeaseTime: time.Hour, Clock: clk,
	})
	eng := policy.NewEngine(clk)
	api := New(srv, eng, packet.MustIP4("192.168.1.1"))
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return api, srv, eng, ts
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postStatus(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestStatusEndpoint(t *testing.T) {
	_, _, _, ts := testAPI(t)
	var out map[string]interface{}
	if code := getJSON(t, ts.URL+"/api/status", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out["router"] != "192.168.1.1" {
		t.Errorf("status = %v", out)
	}
}

func TestDeviceLifecycleOverHTTP(t *testing.T) {
	api, srv, _, ts := testAPI(t)
	changes := 0
	api.OnChange = func() { changes++ }

	mac := "02:aa:00:00:00:01"
	// The device appears (as if it had sent a DISCOVER).
	m, _ := packet.ParseMAC(mac)
	srv.Deny(m) // создать? no — Deny creates the record
	srv.Permit(m)

	var devices []map[string]interface{}
	getJSON(t, ts.URL+"/api/devices", &devices)
	if len(devices) != 1 || devices[0]["state"] != "permitted" {
		t.Fatalf("devices = %v", devices)
	}

	if code := postStatus(t, ts.URL+"/api/devices/"+mac+"/deny", ""); code != http.StatusOK {
		t.Fatalf("deny status = %d", code)
	}
	dev, _ := srv.Lookup(m)
	if dev.State != dhcp.Denied {
		t.Errorf("state = %v", dev.State)
	}
	if code := postStatus(t, ts.URL+"/api/devices/"+mac+"/permit", ""); code != http.StatusOK {
		t.Fatalf("permit status = %d", code)
	}
	if code := postStatus(t, ts.URL+"/api/devices/"+mac+"/annotate", "the kid's tablet"); code != http.StatusOK {
		t.Fatalf("annotate status = %d", code)
	}
	dev, _ = srv.Lookup(m)
	if dev.Metadata != "the kid's tablet" {
		t.Errorf("metadata = %q", dev.Metadata)
	}
	if changes < 3 {
		t.Errorf("OnChange fired %d times", changes)
	}
}

func TestDeviceBadMAC(t *testing.T) {
	_, _, _, ts := testAPI(t)
	if code := postStatus(t, ts.URL+"/api/devices/nonsense/permit", ""); code != http.StatusBadRequest {
		t.Errorf("status = %d", code)
	}
}

func TestPolicyCRUDOverHTTP(t *testing.T) {
	_, _, eng, ts := testAPI(t)
	body := `{"name":"kids-facebook","devices":["02:aa:00:00:00:01"],
	          "allowed_sites":["facebook.com"],"require_key":"parent-key"}`
	if code := postStatus(t, ts.URL+"/api/policies", body); code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}
	if len(eng.Policies()) != 1 {
		t.Fatal("policy not installed")
	}
	var pols []json.RawMessage
	getJSON(t, ts.URL+"/api/policies", &pols)
	if len(pols) != 1 {
		t.Fatalf("policies = %v", pols)
	}

	// Invalid policy rejected.
	if code := postStatus(t, ts.URL+"/api/policies", `{"name":""}`); code != http.StatusBadRequest {
		t.Errorf("bad policy status = %d", code)
	}

	// Access endpoint reflects the policy.
	var acc map[string]interface{}
	getJSON(t, ts.URL+"/api/access/02:aa:00:00:00:01", &acc)
	if acc["governed"] != true || acc["network_allowed"] != false {
		t.Errorf("access = %v", acc)
	}

	// Key insertion via the API lifts it.
	if code := postStatus(t, ts.URL+"/api/keys/parent-key/insert", ""); code != http.StatusOK {
		t.Fatalf("insert status = %d", code)
	}
	getJSON(t, ts.URL+"/api/access/02:aa:00:00:00:01", &acc)
	if acc["network_allowed"] != true {
		t.Errorf("access after key = %v", acc)
	}
	if code := postStatus(t, ts.URL+"/api/keys/parent-key/remove", ""); code != http.StatusOK {
		t.Fatalf("remove status = %d", code)
	}

	// Delete the policy.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/policies/kids-facebook", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(eng.Policies()) != 0 {
		t.Errorf("delete status = %d, policies = %d", resp.StatusCode, len(eng.Policies()))
	}
	// Double delete is 404.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete status = %d", resp.StatusCode)
	}
}

func TestListenAndServe(t *testing.T) {
	api, _, _, _ := testAPI(t)
	if err := api.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	if api.Addr() == "" {
		t.Fatal("no address")
	}
	resp, err := http.Get("http://" + api.Addr() + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestNameAndConfigure(t *testing.T) {
	api, _, _, _ := testAPI(t)
	if api.Name() != "control-api" {
		t.Errorf("name = %q", api.Name())
	}
	if err := api.Configure(nil); err != nil {
		t.Errorf("configure: %v", err)
	}
	if !strings.HasPrefix(api.RouterIP.String(), "192.168.1") {
		t.Errorf("router ip = %v", api.RouterIP)
	}
}

// TestReplayEndpoint: /api/replay/{table} forwards parsed bounds to the
// Replay hook, 404s without one, and 400s on bad timestamps.
func TestReplayEndpoint(t *testing.T) {
	api, _, _, ts := testAPI(t)

	resp, err := http.Get(ts.URL + "/api/replay/Flows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hookless replay status = %d", resp.StatusCode)
	}

	var gotTable string
	var gotFrom, gotTo time.Time
	api.Replay = func(table string, from, to time.Time) (string, error) {
		gotTable, gotFrom, gotTo = table, from, to
		return "timestamp n\n", nil
	}
	resp, err = http.Get(ts.URL + "/api/replay/Flows?from=@100&to=200")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d body = %q", resp.StatusCode, body.String())
	}
	if gotTable != "Flows" || gotFrom.UnixNano() != 100 || gotTo.UnixNano() != 200 {
		t.Fatalf("hook called with table=%q from=%d to=%d", gotTable, gotFrom.UnixNano(), gotTo.UnixNano())
	}
	if !strings.HasPrefix(body.String(), "timestamp") {
		t.Fatalf("replay body = %q", body.String())
	}

	resp, err = http.Get(ts.URL + "/api/replay/Flows?from=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-from status = %d", resp.StatusCode)
	}
}
