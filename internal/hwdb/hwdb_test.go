package hwdb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
)

func testDB(t *testing.T) (*DB, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated()
	return NewHomework(clk, 1024), clk
}

func TestValueRoundTrips(t *testing.T) {
	mac := packet.MustMAC("00:1c:b3:09:85:15")
	if MACVal(mac).MAC() != mac {
		t.Error("MAC round trip failed")
	}
	ip := packet.MustIP4("192.168.1.254")
	if IPVal(ip).IP() != ip {
		t.Error("IP round trip failed")
	}
	now := time.Unix(1313398800, 12345)
	if !TimeVal(now).Time().Equal(now) {
		t.Error("Time round trip failed")
	}
	if !Bool(true).Equal(Int64(1)) || Bool(false).Equal(Int64(1)) {
		t.Error("Bool comparisons wrong")
	}
}

func TestValueOrdering(t *testing.T) {
	if !Int64(1).Less(Int64(2)) || Int64(2).Less(Int64(1)) {
		t.Error("int ordering wrong")
	}
	if !Float(1.5).Less(Int64(2)) {
		t.Error("mixed numeric ordering wrong")
	}
	if !Str("a").Less(Str("b")) {
		t.Error("string ordering wrong")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema(Column{"a", TInt}, Column{"b", TString})
	if err := s.Validate([]Value{Int64(1), Str("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate([]Value{Int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.Validate([]Value{Str("x"), Str("y")}); err == nil {
		t.Error("type mismatch accepted")
	}
	r := NewSchema(Column{"v", TReal})
	if err := r.Validate([]Value{Int64(3)}); err != nil {
		t.Errorf("int should widen to real: %v", err)
	}
}

func TestRingBufferEviction(t *testing.T) {
	tbl := NewTable("t", NewSchema(Column{"n", TInt}), 4)
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(now.Add(time.Duration(i)*time.Second), []Value{Int64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tbl.Len())
	}
	ins, drop := tbl.Stats()
	if ins != 10 || drop != 6 {
		t.Errorf("stats = %d inserts, %d dropped", ins, drop)
	}
	rows := tbl.Snapshot()
	for i, r := range rows {
		if want := int64(6 + i); r.Vals[0].Int != want {
			t.Errorf("row %d = %d, want %d (oldest-first after wrap)", i, r.Vals[0].Int, want)
		}
	}
}

func TestOnInsertSubscription(t *testing.T) {
	tbl := NewTable("t", NewSchema(Column{"n", TInt}), 8)
	var got []int64
	tbl.OnInsert(func(r Row) { got = append(got, r.Vals[0].Int) })
	for i := 0; i < 3; i++ {
		_ = tbl.Insert(time.Now(), []Value{Int64(int64(i))})
	}
	if len(got) != 3 || got[2] != 2 {
		t.Errorf("got %v", got)
	}
}

func TestHomeworkTables(t *testing.T) {
	db, _ := testDB(t)
	names := db.TableNames()
	if len(names) != 4 {
		t.Fatalf("tables = %v", names)
	}
	mac := packet.MustMAC("02:00:00:00:00:01")
	ft := packet.FiveTuple{
		Src: packet.MustIP4("192.168.1.10"), Dst: packet.MustIP4("8.8.8.8"),
		Proto: packet.ProtoUDP, SrcPort: 5000, DstPort: 53,
	}
	if err := db.InsertFlow(mac, ft, 10, 1200); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertLink(mac, -47, 2, 54.0); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertLease("add", mac, packet.MustIP4("192.168.1.10"), "toms-mac-air"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TableFlows, TableLinks, TableLeases} {
		tbl, _ := db.Table(name)
		if tbl.Len() != 1 {
			t.Errorf("%s has %d rows", name, tbl.Len())
		}
	}
}

func TestSelectStar(t *testing.T) {
	db, _ := testDB(t)
	mac := packet.MustMAC("02:00:00:00:00:01")
	_ = db.InsertLink(mac, -50, 0, 54)
	res, err := db.Query("SELECT * FROM Links")
	if err != nil {
		t.Fatal(err)
	}
	// * expands to timestamp + schema columns.
	want := []string{"timestamp", "mac", "rssi", "retries", "rate"}
	if strings.Join(res.Cols, ",") != strings.Join(want, ",") {
		t.Errorf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 1 || res.Rows[0][2].Int != -50 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectWhere(t *testing.T) {
	db, _ := testDB(t)
	m1 := packet.MustMAC("02:00:00:00:00:01")
	m2 := packet.MustMAC("02:00:00:00:00:02")
	_ = db.InsertLink(m1, -40, 0, 54)
	_ = db.InsertLink(m2, -80, 5, 6)
	_ = db.InsertLink(m1, -45, 1, 48)

	res, err := db.Query("SELECT rssi FROM Links WHERE mac = 02:00:00:00:00:01")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}

	res, err = db.Query("SELECT mac FROM Links WHERE rssi < -60 AND retries > 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MAC() != m2 {
		t.Errorf("rows = %v", res.Rows)
	}

	res, err = db.Query("SELECT mac FROM Links WHERE rssi < -60 OR rate >= 54")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("OR query rows = %d", len(res.Rows))
	}

	res, err = db.Query("SELECT mac FROM Links WHERE NOT (rssi < -60)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("NOT query rows = %d", len(res.Rows))
	}
}

func TestSelectWindowRows(t *testing.T) {
	db, _ := testDB(t)
	for i := 0; i < 10; i++ {
		_ = db.InsertLink(packet.MAC{byte(i)}, -40-i, 0, 54)
	}
	res, err := db.Query("SELECT rssi FROM Links [ROWS 3]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int != -47 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectWindowRange(t *testing.T) {
	db, clk := testDB(t)
	_ = db.InsertLink(packet.MAC{1}, -40, 0, 54)
	clk.Advance(10 * time.Second)
	_ = db.InsertLink(packet.MAC{2}, -50, 0, 54)
	clk.Advance(2 * time.Second)
	_ = db.InsertLink(packet.MAC{3}, -60, 0, 54)

	res, err := db.Query("SELECT mac FROM Links [RANGE 5 SECONDS]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("RANGE 5s rows = %d, want 2", len(res.Rows))
	}

	res, err = db.Query("SELECT mac FROM Links [RANGE 1 MINUTES]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("RANGE 1m rows = %d, want 3", len(res.Rows))
	}

	res, err = db.Query("SELECT mac FROM Links [NOW]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MAC() != (packet.MAC{3}) {
		t.Errorf("NOW rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db, _ := testDB(t)
	mac := packet.MustMAC("02:00:00:00:00:01")
	ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 80}
	_ = db.InsertFlow(mac, ft, 10, 1000)
	_ = db.InsertFlow(mac, ft, 20, 3000)
	_ = db.InsertFlow(mac, ft, 30, 5000)

	res, err := db.Query("SELECT count(*), sum(bytes), avg(bytes), min(bytes), max(bytes) FROM Flows")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int != 3 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].AsFloat() != 9000 || row[2].AsFloat() != 3000 {
		t.Errorf("sum/avg = %v/%v", row[1], row[2])
	}
	if row[3].Int != 1000 || row[4].Int != 5000 {
		t.Errorf("min/max = %v/%v", row[3], row[4])
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db, _ := testDB(t)
	res, err := db.Query("SELECT count(*) FROM Flows")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 0 {
		t.Errorf("count over empty = %v", res.Rows)
	}
}

func TestGroupBy(t *testing.T) {
	db, _ := testDB(t)
	m1 := packet.MustMAC("02:00:00:00:00:01")
	m2 := packet.MustMAC("02:00:00:00:00:02")
	web := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 80}
	dns := packet.FiveTuple{Proto: packet.ProtoUDP, DstPort: 53}
	_ = db.InsertFlow(m1, web, 1, 100)
	_ = db.InsertFlow(m1, web, 1, 200)
	_ = db.InsertFlow(m1, dns, 1, 50)
	_ = db.InsertFlow(m2, web, 1, 1000)

	// The Figure-1 query: per-device per-protocol bandwidth.
	res, err := db.Query("SELECT mac, dport, sum(bytes) AS total FROM Flows GROUP BY mac, dport ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].MAC() != m2 || res.Rows[0][2].AsFloat() != 1000 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	if res.Cols[2] != "total" {
		t.Errorf("alias not applied: %v", res.Cols)
	}
}

func TestGroupByRejectsBareColumn(t *testing.T) {
	db, _ := testDB(t)
	if _, err := db.Query("SELECT mac, sum(bytes) FROM Flows GROUP BY dport"); err == nil {
		t.Error("non-grouped bare column accepted")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db, _ := testDB(t)
	for i := 0; i < 5; i++ {
		_ = db.InsertLink(packet.MAC{byte(i)}, -40-i, i, 54)
	}
	res, err := db.Query("SELECT mac, rssi FROM Links ORDER BY rssi DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Int != -40 || res.Rows[1][1].Int != -41 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInsertStatement(t *testing.T) {
	db, _ := testDB(t)
	_, err := db.Exec("INSERT INTO Links VALUES (02:00:00:00:00:07, -55, 3, 24.5)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT retries, rate FROM Links WHERE mac = 02:00:00:00:00:07")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 || res.Rows[0][1].Real != 24.5 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCreateTableStatement(t *testing.T) {
	db, _ := testDB(t)
	_, err := db.Exec("CREATE TABLE Probes (name varchar, level integer) RING 16")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO Probes VALUES ('kitchen', 4)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT name, level FROM Probes")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "kitchen" {
		t.Errorf("rows = %v", res.Rows)
	}
	tbl, _ := db.Table("probes")
	if tbl.Cap() != 16 {
		t.Errorf("ring size = %d", tbl.Cap())
	}
	if _, err := db.Exec("CREATE TABLE Probes (x integer)"); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestIPAndStringLiterals(t *testing.T) {
	db, _ := testDB(t)
	_ = db.InsertLease("add", packet.MAC{1}, packet.MustIP4("192.168.1.10"), "it's toms")
	res, err := db.Query("SELECT hostname FROM Leases WHERE ip = 192.168.1.10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "it's toms" {
		t.Errorf("rows = %v", res.Rows)
	}
	res, err = db.Query("SELECT ip FROM Leases WHERE hostname = 'it''s toms'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("quoted string match failed: %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM Flows",
		"SELECT FROM Flows",
		"SELECT * FROM",
		"SELECT * FROM Flows [ROWS]",
		"SELECT * FROM Flows [RANGE 5]",
		"SELECT * FROM Flows [RANGE 5 fortnights]",
		"SELECT * FROM Flows WHERE",
		"SELECT * FROM Flows WHERE mac ==",
		"SELECT sum(*) FROM Flows",
		"INSERT INTO Flows (1,2)",
		"SELECT * FROM Flows LIMIT -1",
		"SELECT 'unterminated FROM Flows",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", q)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	db, _ := testDB(t)
	cases := []string{
		"SELECT * FROM NoSuchTable",
		"SELECT nosuchcol FROM Flows",
		"SELECT * FROM Flows WHERE nosuchcol = 1",
		"SELECT mac FROM Flows ORDER BY bytes", // bytes not projected
	}
	for _, q := range cases {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) unexpectedly succeeded", q)
		}
	}
}

func TestTimestampPseudoColumn(t *testing.T) {
	db, clk := testDB(t)
	_ = db.InsertLink(packet.MAC{1}, -40, 0, 54)
	cut := clk.Now().UnixNano()
	clk.Advance(time.Second)
	_ = db.InsertLink(packet.MAC{2}, -50, 0, 54)

	res, err := db.Query(fmt.Sprintf("SELECT mac FROM Links WHERE timestamp > @%d", cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MAC() != (packet.MAC{2}) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestResultText(t *testing.T) {
	db, _ := testDB(t)
	_ = db.InsertLink(packet.MustMAC("02:00:00:00:00:01"), -40, 0, 54)
	res, err := db.Query("SELECT mac, rssi FROM Links")
	if err != nil {
		t.Fatal(err)
	}
	text := res.Text()
	if !strings.HasPrefix(text, "mac\trssi\n") {
		t.Errorf("text = %q", text)
	}
	if !strings.Contains(text, "02:00:00:00:00:01\t-40\n") {
		t.Errorf("text = %q", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0][0].Str != "02:00:00:00:00:01" {
		t.Errorf("ParseText = %v", back.Rows)
	}
}

func TestParserNeverPanicsQuick(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: after N inserts into a ring of size K, Len == min(N, K) and
// snapshot rows are the most recent, in order.
func TestRingInvariantQuick(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		size := int(k%64) + 1
		tbl := NewTable("t", NewSchema(Column{"n", TInt}), size)
		total := int(n)
		for i := 0; i < total; i++ {
			if err := tbl.Insert(time.Unix(int64(i), 0), []Value{Int64(int64(i))}); err != nil {
				return false
			}
		}
		want := total
		if want > size {
			want = size
		}
		rows := tbl.Snapshot()
		if len(rows) != want {
			return false
		}
		for i, r := range rows {
			if r.Vals[0].Int != int64(total-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRPCExecAndQuery(t *testing.T) {
	db, _ := testDB(t)
	srv := NewServer(db)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO Links VALUES (02:00:00:00:00:01, -42, 0, 54.0)"); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("SELECT mac, rssi FROM Links")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "-42" {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := cli.Exec("SELECT * FROM Nope"); err == nil {
		t.Error("server error not propagated")
	}
}

func TestRPCSubscribePush(t *testing.T) {
	clk := clock.Real{} // subscriptions need a real clock for this test
	db := NewHomework(clk, 1024)
	srv := NewServer(db)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_ = db.InsertLink(packet.MustMAC("02:00:00:00:00:01"), -42, 0, 54.0)
	id, err := cli.Subscribe("SUBSCRIBE SELECT mac, rssi FROM Links [ROWS 5] EVERY 0.02 SECONDS")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Subscriptions() != 1 {
		t.Errorf("subscriptions = %d", srv.Subscriptions())
	}
	push, err := cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if push.SubID != id || len(push.Result.Rows) != 1 {
		t.Errorf("push = %+v", push)
	}
	if err := cli.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if srv.Subscriptions() != 0 {
		t.Errorf("subscriptions after unsubscribe = %d", srv.Subscriptions())
	}
}

func TestRPCTruncation(t *testing.T) {
	db, _ := testDB(t)
	// Insert enough rows that the text form exceeds MaxDatagram.
	for i := 0; i < 3000; i++ {
		_ = db.InsertLease("add", packet.MAC{byte(i), byte(i >> 8)}, packet.IP4{10, 0, byte(i >> 8), byte(i)},
			fmt.Sprintf("very-long-hostname-for-device-number-%06d", i))
	}
	srv := NewServer(db)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Exec("SELECT * FROM Leases")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) >= 3000 {
		t.Errorf("expected truncated result, got %d rows", len(res.Rows))
	}
}

func BenchmarkInsertFlow(b *testing.B) {
	db := NewHomework(clock.Real{}, DefaultRingSize)
	mac := packet.MAC{2}
	ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = db.InsertFlow(mac, ft, 1, 1500)
	}
}

func BenchmarkGroupByQuery(b *testing.B) {
	db := NewHomework(clock.Real{}, DefaultRingSize)
	for i := 0; i < 10000; i++ {
		_ = db.InsertFlow(packet.MAC{byte(i % 6)}, packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: uint16(i % 5)}, 1, 1000)
	}
	sel, err := Parse("SELECT mac, dport, sum(bytes) FROM Flows GROUP BY mac, dport")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select(sel.(*SelectStmt)); err != nil {
			b.Fatal(err)
		}
	}
}
