package hwdb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is a query result: a header row plus data rows, oldest-first
// unless ORDER BY reordered them.
type Result struct {
	Cols []string
	Rows [][]Value
}

// Text renders the result as tab-separated lines, header first; the wire
// format of the UDP RPC and the input to the visualization interfaces.
func (r *Result) Text() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(v.Text())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Query parses and executes a SELECT statement.
func (db *DB) Query(cql string) (*Result, error) {
	st, err := Parse(cql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("hwdb: not a SELECT: %s", cql)
	}
	return db.Select(sel)
}

// Exec parses and executes any statement, returning a result for SELECT and
// nil for others.
func (db *DB) Exec(cql string) (*Result, error) {
	st, err := Parse(cql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		return db.Select(s)
	case *InsertStmt:
		return nil, db.Insert(s.Table, s.Vals...)
	case *CreateStmt:
		_, err := db.CreateTable(s.Table, s.Schema, s.RingSize)
		return nil, err
	case *SubscribeStmt:
		return nil, fmt.Errorf("hwdb: SUBSCRIBE only valid over the RPC interface")
	}
	return nil, fmt.Errorf("hwdb: unhandled statement")
}

// Select executes a parsed SELECT.
func (db *DB) Select(sel *SelectStmt) (*Result, error) {
	t, ok := db.Table(sel.Table)
	if !ok {
		return nil, fmt.Errorf("hwdb: no such table %s", sel.Table)
	}
	schema := t.Schema()
	if err := validateExpr(schema, sel.Where); err != nil {
		return nil, err
	}
	// Source the rows: live ring for ordinary queries, retained history
	// for time travel. AS OF also re-anchors window evaluation at the
	// requested instant, so `[RANGE n] AS OF @t` reads relative to t.
	now := db.clk.Now()
	var rows []Row
	switch {
	case sel.HasAsOf:
		rows = db.historyRows(t, time.Time{}, sel.AsOf)
		now = sel.AsOf
	case sel.HasHist:
		rows = db.historyRows(t, sel.HistFrom, sel.HistTo)
		now = sel.HistTo
	default:
		rows = t.Snapshot()
	}
	rows = applyWindow(rows, sel.Win, now)

	// Filter.
	if sel.Where != nil {
		kept := rows[:0:0]
		for _, r := range rows {
			ok, err := sel.Where.Eval(schema, r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	hasAgg := false
	for _, it := range sel.Items {
		if it.Agg != AggNone {
			hasAgg = true
			break
		}
	}

	var res *Result
	var err error
	switch {
	case hasAgg || len(sel.GroupBy) > 0:
		res, err = aggregate(schema, sel, rows)
	default:
		res, err = project(schema, sel, rows)
	}
	if err != nil {
		return nil, err
	}

	if len(sel.Order) > 0 {
		if err := orderRows(res, sel.Order); err != nil {
			return nil, err
		}
	}
	if sel.Limit > 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return res, nil
}

// History is the programmatic form of `SELECT * FROM table HISTORY @from
// @to`: the table's retained rows (HistorySource-widened when one is
// attached) in the inclusive range, projected with the timestamp column.
// Zero bounds are open.
func (db *DB) History(table string, from, to time.Time) (*Result, error) {
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("hwdb: no such table %s", table)
	}
	sel := &SelectStmt{
		Items:    []SelectItem{{Col: "*"}},
		Table:    table,
		HistFrom: from, HistTo: to, HasHist: true,
	}
	rows := db.historyRows(t, from, to)
	return project(t.Schema(), sel, rows)
}

// validateExpr checks that every column referenced by a WHERE expression
// exists, so bad queries fail even when the window is empty.
func validateExpr(schema *Schema, e Expr) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *AndExpr:
		if err := validateExpr(schema, x.L); err != nil {
			return err
		}
		return validateExpr(schema, x.R)
	case *OrExpr:
		if err := validateExpr(schema, x.L); err != nil {
			return err
		}
		return validateExpr(schema, x.R)
	case *NotExpr:
		return validateExpr(schema, x.E)
	case *CmpExpr:
		if _, ok := schema.Index(x.Col); !ok && !strings.EqualFold(x.Col, "timestamp") {
			return fmt.Errorf("hwdb: unknown column %q", x.Col)
		}
	}
	return nil
}

// project handles plain SELECT col,... (or *) without aggregation.
func project(schema *Schema, sel *SelectStmt, rows []Row) (*Result, error) {
	type colRef struct {
		idx  int // -1 = timestamp pseudo-column
		name string
	}
	var refs []colRef
	for _, it := range sel.Items {
		if it.Col == "*" {
			refs = append(refs, colRef{-1, "timestamp"})
			for i, c := range schema.Cols {
				refs = append(refs, colRef{i, c.Name})
			}
			continue
		}
		if strings.EqualFold(it.Col, "timestamp") {
			refs = append(refs, colRef{-1, it.Name})
			continue
		}
		i, ok := schema.Index(it.Col)
		if !ok {
			return nil, fmt.Errorf("hwdb: unknown column %q", it.Col)
		}
		refs = append(refs, colRef{i, it.Name})
	}
	res := &Result{}
	for _, r := range refs {
		res.Cols = append(res.Cols, r.name)
	}
	for _, row := range rows {
		out := make([]Value, len(refs))
		for i, r := range refs {
			if r.idx < 0 {
				out[i] = TimeVal(row.TS)
			} else {
				out[i] = row.Vals[r.idx]
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

type aggState struct {
	count int64
	sum   float64
	min   Value
	max   Value
	seen  bool
}

// aggregate handles GROUP BY and aggregate select items.
func aggregate(schema *Schema, sel *SelectStmt, rows []Row) (*Result, error) {
	// Validate: non-aggregate items must appear in GROUP BY.
	groupIdx := make([]int, 0, len(sel.GroupBy))
	groupSet := map[string]bool{}
	for _, g := range sel.GroupBy {
		i, ok := schema.Index(g)
		if !ok {
			return nil, fmt.Errorf("hwdb: unknown GROUP BY column %q", g)
		}
		groupIdx = append(groupIdx, i)
		groupSet[strings.ToLower(g)] = true
	}
	for _, it := range sel.Items {
		if it.Agg == AggNone && !groupSet[strings.ToLower(it.Col)] {
			return nil, fmt.Errorf("hwdb: column %q must appear in GROUP BY", it.Col)
		}
	}

	type group struct {
		key  []Value
		aggs []aggState
	}
	groups := map[string]*group{}
	var order []string

	keyOf := func(r Row) (string, []Value) {
		key := make([]Value, len(groupIdx))
		var sb strings.Builder
		for i, gi := range groupIdx {
			key[i] = r.Vals[gi]
			sb.WriteString(key[i].String())
			sb.WriteByte('|')
		}
		return sb.String(), key
	}

	for _, row := range rows {
		ks, key := keyOf(row)
		g := groups[ks]
		if g == nil {
			g = &group{key: key, aggs: make([]aggState, len(sel.Items))}
			groups[ks] = g
			order = append(order, ks)
		}
		for i, it := range sel.Items {
			if it.Agg == AggNone {
				continue
			}
			st := &g.aggs[i]
			st.count++
			if it.Col == "*" {
				continue
			}
			ci, ok := schema.Index(it.Col)
			if !ok {
				return nil, fmt.Errorf("hwdb: unknown column %q", it.Col)
			}
			v := row.Vals[ci]
			st.sum += v.AsFloat()
			if !st.seen || v.Less(st.min) {
				st.min = v
			}
			if !st.seen || st.max.Less(v) {
				st.max = v
			}
			st.seen = true
		}
	}

	res := &Result{}
	for _, it := range sel.Items {
		res.Cols = append(res.Cols, it.Name)
	}
	for _, ks := range order {
		g := groups[ks]
		out := make([]Value, len(sel.Items))
		for i, it := range sel.Items {
			switch it.Agg {
			case AggNone:
				for j, gcol := range sel.GroupBy {
					if strings.EqualFold(gcol, it.Col) {
						out[i] = g.key[j]
						break
					}
				}
			case AggCount:
				out[i] = Int64(g.aggs[i].count)
			case AggSum:
				out[i] = Float(g.aggs[i].sum)
			case AggAvg:
				if g.aggs[i].count == 0 {
					out[i] = Float(0)
				} else {
					out[i] = Float(g.aggs[i].sum / float64(g.aggs[i].count))
				}
			case AggMin:
				out[i] = g.aggs[i].min
			case AggMax:
				out[i] = g.aggs[i].max
			}
		}
		res.Rows = append(res.Rows, out)
	}

	// A bare aggregate over zero rows still yields one row (count = 0).
	if len(res.Rows) == 0 && len(sel.GroupBy) == 0 {
		out := make([]Value, len(sel.Items))
		for i, it := range sel.Items {
			switch it.Agg {
			case AggCount:
				out[i] = Int64(0)
			case AggSum, AggAvg:
				out[i] = Float(0)
			default:
				out[i] = Value{}
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func orderRows(res *Result, order []OrderBy) error {
	idx := make([]int, len(order))
	for i, ob := range order {
		found := -1
		for j, c := range res.Cols {
			if strings.EqualFold(c, ob.Col) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("hwdb: ORDER BY column %q not in result", ob.Col)
		}
		idx[i] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, ob := range order {
			va, vb := res.Rows[a][idx[i]], res.Rows[b][idx[i]]
			if va.Equal(vb) {
				continue
			}
			if ob.Desc {
				return vb.Less(va)
			}
			return va.Less(vb)
		}
		return false
	})
	return nil
}
