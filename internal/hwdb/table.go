package hwdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
)

// DefaultRingSize is the per-table ring capacity when none is given. The
// database is ephemeral by design: when the ring wraps, the oldest events
// are forgotten.
const DefaultRingSize = 65536

// Table is one ephemeral event stream: a schema plus a fixed-size ring
// buffer of timestamped rows.
type Table struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	ring    []Row
	head    int // position of next insert
	count   int // rows currently held (<= len(ring))
	inserts uint64
	dropped uint64

	onInsert []func(Row)
}

// NewTable creates a table with the given ring capacity.
func NewTable(name string, schema *Schema, ringSize int) *Table {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Table{name: name, schema: schema, ring: make([]Row, ringSize)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Cap returns the ring capacity.
func (t *Table) Cap() int { return len(t.ring) }

// Len returns the number of rows currently retained.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Stats returns total inserts and rows dropped by ring wrap.
func (t *Table) Stats() (inserts, dropped uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.inserts, t.dropped
}

// Insert appends a row with timestamp ts, overwriting the oldest row when
// the ring is full, then fires on-insert subscriptions outside the lock.
func (t *Table) Insert(ts time.Time, vals []Value) error {
	if err := t.schema.Validate(vals); err != nil {
		return err
	}
	row := Row{TS: ts, Vals: vals}
	t.mu.Lock()
	if t.count == len(t.ring) {
		t.dropped++
	} else {
		t.count++
	}
	t.ring[t.head] = row
	t.head = (t.head + 1) % len(t.ring)
	t.inserts++
	subs := t.onInsert
	t.mu.Unlock()
	for _, fn := range subs {
		fn(row)
	}
	return nil
}

// OnInsert registers fn to run for every inserted row. Used by the in-
// process subscription path (the artifact's DHCP-flash mode, for example).
func (t *Table) OnInsert(fn func(Row)) {
	t.mu.Lock()
	t.onInsert = append(t.onInsert, fn)
	t.mu.Unlock()
}

// Snapshot returns the retained rows oldest-first. The returned slice is
// fresh; row values are shared (rows are never mutated after insert).
func (t *Table) Snapshot() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, t.count)
	start := t.head - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Tail returns, oldest-first, the rows inserted after the first `after`
// inserts, plus the table's current total insert count. It is the batched
// cursor read aggregators use: read Tail(cursor), process the rows, set
// cursor to the returned count. Rows that wrapped out of the ring before
// being read are lost (reported via lost); the next cursor still advances
// past them. One lock acquisition per call, regardless of row count.
func (t *Table) Tail(after uint64) (rows []Row, inserts uint64, lost uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	inserts = t.inserts
	if after >= inserts {
		return nil, inserts, 0
	}
	missed := inserts - after // rows inserted since the cursor
	n := int(missed)
	if uint64(n) != missed || n > t.count { // cursor fell off the ring
		lost = missed - uint64(t.count)
		n = t.count
	}
	out := make([]Row, 0, n)
	start := t.head - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out, inserts, lost
}

// RowsBetween returns the retained rows with from <= TS <= to,
// oldest-first. A zero bound is open: RowsBetween(time.Time{}, to) is
// "everything up to to", the ring-local evaluation of AS OF. History
// older than the ring is gone here — a HistorySource widens the horizon.
func (t *Table) RowsBetween(from, to time.Time) []Row {
	rows := t.Snapshot()
	if !from.IsZero() {
		i := sort.Search(len(rows), func(i int) bool { return !rows[i].TS.Before(from) })
		rows = rows[i:]
	}
	if !to.IsZero() {
		i := sort.Search(len(rows), func(i int) bool { return rows[i].TS.After(to) })
		rows = rows[:i]
	}
	return rows
}

// applyWindow selects rows by a window specification, oldest-first. now
// anchors RANGE windows — the clock for live queries, the AS OF instant
// for time travel, so `[RANGE 5 seconds] AS OF @t` means "the five
// seconds leading up to t".
func applyWindow(rows []Row, w Window, now time.Time) []Row {
	switch w.Kind {
	case WindowAll:
		return rows
	case WindowRows:
		if w.N < len(rows) {
			rows = rows[len(rows)-w.N:]
		}
		return rows
	case WindowRange:
		cutoff := now.Add(-w.Dur)
		i := sort.Search(len(rows), func(i int) bool { return !rows[i].TS.Before(cutoff) })
		return rows[i:]
	case WindowNow:
		if len(rows) == 0 {
			return nil
		}
		return rows[len(rows)-1:]
	}
	return rows
}

// HistorySource serves retained history beyond (or instead of) a table's
// live ring: the flight recorder's compacted retention windows implement
// it. HistoryRows returns the rows for table with from <= TS <= to (zero
// bounds are open), oldest-first in insertion order, and whether the
// source covers the table at all — false falls the query back to the
// ring, so a database with a partial source still answers for every
// table.
type HistorySource interface {
	HistoryRows(table string, from, to time.Time) ([]Row, bool)
}

// DB is a named collection of tables with a clock for window evaluation.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	clk     clock.Clock
	history HistorySource
}

// New creates an empty database using clk for RANGE windows and insertion
// timestamps (pass clock.Real{} outside tests).
func New(clk clock.Clock) *DB {
	if clk == nil {
		clk = clock.Real{}
	}
	return &DB{tables: make(map[string]*Table), clk: clk}
}

// Clock returns the database clock.
func (db *DB) Clock() clock.Clock { return db.clk }

// SetHistory attaches the source AS OF / HISTORY queries draw retained
// rows from (nil detaches; queries then evaluate over the live rings).
func (db *DB) SetHistory(h HistorySource) {
	db.mu.Lock()
	db.history = h
	db.mu.Unlock()
}

// historyRows sources the rows for a time-travel query: the attached
// HistorySource when it covers the table, the live ring otherwise.
func (db *DB) historyRows(t *Table, from, to time.Time) []Row {
	db.mu.RLock()
	h := db.history
	db.mu.RUnlock()
	if h != nil {
		if rows, ok := h.HistoryRows(t.Name(), from, to); ok {
			return rows
		}
	}
	return t.RowsBetween(from, to)
}

// CreateTable adds a table; the name must be unused.
func (db *DB) CreateTable(name string, schema *Schema, ringSize int) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("hwdb: table %s already exists", name)
	}
	t := NewTable(name, schema, ringSize)
	db.tables[key] = t
	return t, nil
}

// Table looks up a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.name)
	}
	sort.Strings(names)
	return names
}

// Insert validates and appends a row stamped with the database clock.
func (db *DB) Insert(table string, vals ...Value) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("hwdb: no such table %s", table)
	}
	return t.Insert(db.clk.Now(), vals)
}

// Standard Homework table names.
const (
	TableFlows    = "Flows"
	TableLinks    = "Links"
	TableLeases   = "Leases"
	TableFlowPerf = "FlowPerf"
)

// NewHomework creates a database with the four standard Homework tables.
//
//	Flows:    periodically observed active five-tuples with byte/packet counts
//	Links:    link-layer info per station: RSSI, retries, rates
//	Leases:   Ethernet-to-IP mappings with lease state
//	FlowPerf: per-flow interval performance from the controller's vantage —
//	          tx vs rx packet/byte deltas across the device's ingress hop,
//	          attributed loss, windowed throughput (bits/s over the actual
//	          clock-measured poll window) and rule-install latency (µs)
func NewHomework(clk clock.Clock, ringSize int) *DB {
	db := New(clk)
	must := func(_ *Table, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(db.CreateTable(TableFlows, NewSchema(
		Column{"mac", TMAC},
		Column{"saddr", TIP},
		Column{"daddr", TIP},
		Column{"proto", TInt},
		Column{"sport", TInt},
		Column{"dport", TInt},
		Column{"packets", TInt},
		Column{"bytes", TInt},
	), ringSize))
	must(db.CreateTable(TableLinks, NewSchema(
		Column{"mac", TMAC},
		Column{"rssi", TInt},
		Column{"retries", TInt},
		Column{"rate", TReal},
	), ringSize))
	must(db.CreateTable(TableLeases, NewSchema(
		Column{"action", TString}, // add | del | upd
		Column{"mac", TMAC},
		Column{"ip", TIP},
		Column{"hostname", TString},
	), ringSize))
	must(db.CreateTable(TableFlowPerf, NewSchema(
		Column{"mac", TMAC},
		Column{"saddr", TIP},
		Column{"daddr", TIP},
		Column{"proto", TInt},
		Column{"sport", TInt},
		Column{"dport", TInt},
		Column{"tx_pkts", TInt},
		Column{"tx_bytes", TInt},
		Column{"rx_pkts", TInt},
		Column{"rx_bytes", TInt},
		Column{"lost_pkts", TInt},
		Column{"bps", TReal},
		Column{"install_us", TInt},
	), ringSize))
	return db
}

// InsertFlow records one observation of an active five-tuple attributed to
// the device with hardware address mac.
func (db *DB) InsertFlow(mac packet.MAC, ft packet.FiveTuple, packets, bytes uint64) error {
	return db.Insert(TableFlows,
		MACVal(mac), IPVal(ft.Src), IPVal(ft.Dst), Int64(int64(ft.Proto)),
		Int64(int64(ft.SrcPort)), Int64(int64(ft.DstPort)),
		Int64(int64(packets)), Int64(int64(bytes)))
}

// InsertLink records a link-layer observation for a station.
func (db *DB) InsertLink(mac packet.MAC, rssi, retries int, rate float64) error {
	return db.Insert(TableLinks, MACVal(mac), Int64(int64(rssi)), Int64(int64(retries)), Float(rate))
}

// InsertFlowPerf records one interval of a flow's performance seen from
// the controller: what the device transmitted (tx), what survived the
// ingress hop (rx), the attributed loss, the interval throughput in
// bits/s, and — on the row that first observes the flow — the punt-to-
// flow-mod rule-install latency in microseconds (0 = not measured).
func (db *DB) InsertFlowPerf(mac packet.MAC, ft packet.FiveTuple, txPkts, txBytes, rxPkts, rxBytes, lostPkts uint64, bps float64, installUS int64) error {
	return db.Insert(TableFlowPerf,
		MACVal(mac), IPVal(ft.Src), IPVal(ft.Dst), Int64(int64(ft.Proto)),
		Int64(int64(ft.SrcPort)), Int64(int64(ft.DstPort)),
		Int64(int64(txPkts)), Int64(int64(txBytes)),
		Int64(int64(rxPkts)), Int64(int64(rxBytes)),
		Int64(int64(lostPkts)), Float(bps), Int64(installUS))
}

// InsertLease records a DHCP lease event ("add", "del" or "upd").
func (db *DB) InsertLease(action string, mac packet.MAC, ip packet.IP4, hostname string) error {
	return db.Insert(TableLeases, Str(action), MACVal(mac), IPVal(ip), Str(hostname))
}
