package hwdb

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The UDP RPC protocol. Requests and responses are single datagrams:
//
//	request:  "HWDB/1 <seq> <VERB>\n<body>"
//	response: "HWDB/1 <seq> OK [arg]\n<body>"  or  "HWDB/1 <seq> ERR <msg>\n"
//
// Verbs: EXEC (body = one CQL statement; SELECT returns a tabular body),
// SUBSCRIBE (body = SUBSCRIBE <select> EVERY <n> <unit>; OK arg is the
// subscription id), UNSUBSCRIBE (body = id) and PING.
//
// Subscription pushes are unsolicited datagrams to the subscriber's address:
//
//	"HWDB/1 0 PUSH <id>\n<tabular body>"
//
// Responses are capped at MaxDatagram; oversize result sets are truncated
// and flagged with a "TRUNCATED" trailer line so clients can tighten their
// window or add LIMIT.
const (
	rpcMagic = "HWDB/1"
	// MaxDatagram is the largest datagram the server will send.
	MaxDatagram = 60000
)

// Server serves the database over UDP.
type Server struct {
	db   *DB
	conn *net.UDPConn

	mu     sync.Mutex
	subs   map[uint64]*subscription
	nextID uint64
	closed atomic.Bool
	wg     sync.WaitGroup
}

type subscription struct {
	id     uint64
	addr   *net.UDPAddr
	query  *SelectStmt
	every  time.Duration
	cancel chan struct{}
}

// NewServer creates a server for db. Call Serve to start it.
func NewServer(db *DB) *Server {
	return &Server{db: db, subs: make(map[uint64]*subscription)}
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Serve(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return err
	}
	s.conn = conn
	s.wg.Add(1)
	go s.loop()
	return nil
}

// Addr returns the bound address once Serve has been called.
func (s *Server) Addr() string {
	if s.conn == nil {
		return ""
	}
	return s.conn.LocalAddr().String()
}

// Close stops the server and cancels all subscriptions.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	for id, sub := range s.subs {
		close(sub.cancel)
		delete(s.subs, id)
	}
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		seq, verb, body, perr := ParseRequest(string(buf[:n]))
		if perr != nil {
			s.reply(addr, seq, "ERR "+perr.Error(), "")
			continue
		}
		s.dispatch(addr, seq, verb, body)
	}
}

// ParseRequest splits one HWDB/1 request datagram into its sequence
// number, upper-cased verb and body. Shared by every HWDB/1-framed
// server (the per-home RPC here and the fleet telemetry endpoint).
func ParseRequest(s string) (seq uint64, verb, body string, err error) {
	nl := strings.IndexByte(s, '\n')
	header := s
	if nl >= 0 {
		header, body = s[:nl], s[nl+1:]
	}
	fields := strings.Fields(header)
	if len(fields) != 3 || fields[0] != rpcMagic {
		return 0, "", "", fmt.Errorf("bad request header")
	}
	seq, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, "", "", fmt.Errorf("bad sequence number")
	}
	return seq, strings.ToUpper(fields[2]), body, nil
}

func (s *Server) dispatch(addr *net.UDPAddr, seq uint64, verb, body string) {
	switch verb {
	case "PING":
		s.reply(addr, seq, "OK pong", "")
	case "EXEC":
		res, err := s.db.Exec(strings.TrimSpace(body))
		if err != nil {
			s.reply(addr, seq, "ERR "+err.Error(), "")
			return
		}
		if res == nil {
			s.reply(addr, seq, "OK 0", "")
			return
		}
		s.reply(addr, seq, fmt.Sprintf("OK %d", len(res.Rows)), res.Text())
	case "SUBSCRIBE":
		st, err := Parse(strings.TrimSpace(body))
		if err != nil {
			s.reply(addr, seq, "ERR "+err.Error(), "")
			return
		}
		sub, ok := st.(*SubscribeStmt)
		if !ok {
			s.reply(addr, seq, "ERR body must be a SUBSCRIBE statement", "")
			return
		}
		id := s.addSubscription(addr, sub)
		s.reply(addr, seq, fmt.Sprintf("OK %d", id), "")
	case "UNSUBSCRIBE":
		id, err := strconv.ParseUint(strings.TrimSpace(body), 10, 64)
		if err != nil {
			s.reply(addr, seq, "ERR bad subscription id", "")
			return
		}
		if s.removeSubscription(id) {
			s.reply(addr, seq, "OK", "")
		} else {
			s.reply(addr, seq, "ERR no such subscription", "")
		}
	default:
		s.reply(addr, seq, "ERR unknown verb "+verb, "")
	}
}

// TruncateBody caps a response body so header+body fits in one
// MaxDatagram-sized datagram, cutting at a line boundary and flagging
// the cut with a "TRUNCATED" trailer. Shared by every HWDB/1-framed
// server (the per-home RPC here and the fleet telemetry endpoint).
func TruncateBody(body string, headerLen int) string {
	if headerLen+len(body) <= MaxDatagram {
		return body
	}
	keep := body[:MaxDatagram-headerLen-len("TRUNCATED\n")]
	if i := strings.LastIndexByte(keep, '\n'); i >= 0 {
		keep = keep[:i+1]
	}
	return keep + "TRUNCATED\n"
}

func (s *Server) reply(addr *net.UDPAddr, seq uint64, status, body string) {
	msg := fmt.Sprintf("%s %d %s\n", rpcMagic, seq, status)
	_, _ = s.conn.WriteToUDP([]byte(msg+TruncateBody(body, len(msg))), addr)
}

func (s *Server) addSubscription(addr *net.UDPAddr, st *SubscribeStmt) uint64 {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	sub := &subscription{
		id: id, addr: addr, query: st.Query, every: st.Every,
		cancel: make(chan struct{}),
	}
	s.subs[id] = sub
	s.mu.Unlock()

	s.wg.Add(1)
	go s.run(sub)
	return id
}

func (s *Server) removeSubscription(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.subs[id]
	if ok {
		close(sub.cancel)
		delete(s.subs, id)
	}
	return ok
}

// Subscriptions returns the number of active subscriptions.
func (s *Server) Subscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// run drives one subscription. Idle subscriptions are free: a period
// where the result cannot have changed skips the SELECT entirely (no
// inserts since the last evaluation, and either the window is
// insert-driven — ROWS/ALL/NOW — or the last result was already empty,
// which only inserts can change), and a re-evaluated result identical to
// the last push is not re-sent. A subscription over an idle table
// therefore generates no datagrams at all until data first appears.
func (s *Server) run(sub *subscription) {
	defer s.wg.Done()
	var (
		lastBody string
		havePush bool   // at least one push sent
		evaled   bool   // lastIns/lastRows are valid
		lastIns  uint64 // table insert count at the last evaluation
		lastRows int    // data rows in the last evaluation
	)
	for {
		select {
		case <-sub.cancel:
			return
		case <-s.db.clk.After(sub.every):
		}
		t, haveTable := s.db.Table(sub.query.Table)
		var ins uint64
		if haveTable {
			ins, _ = t.Stats()
			if evaled && ins == lastIns &&
				(sub.query.Win.Kind != WindowRange || lastRows == 0) {
				continue // nothing can have changed: skip the SELECT too
			}
		}
		res, err := s.db.Select(sub.query)
		if err != nil {
			continue
		}
		evaled, lastIns, lastRows = haveTable, ins, len(res.Rows)
		body := res.Text()
		if havePush && body == lastBody {
			continue // unchanged result: no datagram
		}
		if !havePush && len(res.Rows) == 0 {
			continue // idle from the start: nothing to report yet
		}
		lastBody, havePush = body, true
		header := fmt.Sprintf("%s 0 PUSH %d\n", rpcMagic, sub.id)
		if _, err := s.conn.WriteToUDP([]byte(header+TruncateBody(body, len(header))), sub.addr); err != nil {
			return
		}
	}
}

// Client is a UDP RPC client. It is safe for sequential use; concurrent
// callers should use one Client each.
type Client struct {
	conn    *net.UDPConn
	seq     uint64
	timeout time.Duration

	mu     sync.Mutex
	pushes []Push
	pushCh chan Push
}

// Push is one subscription push received by a client.
type Push struct {
	SubID  uint64
	Result *Result
}

// Dial connects a client to a server address.
func Dial(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, timeout: 2 * time.Second, pushCh: make(chan Push, 64)}
	return c, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// Pushes returns the channel on which subscription pushes are delivered
// while the client waits inside calls.
func (c *Client) Pushes() <-chan Push { return c.pushCh }

// call sends a request and waits for its matching response, queuing any
// pushes that arrive in between.
func (c *Client) call(verb, body string) (status string, respBody string, err error) {
	c.seq++
	seq := c.seq
	req := fmt.Sprintf("%s %d %s\n%s", rpcMagic, seq, verb, body)
	if _, err := c.conn.Write([]byte(req)); err != nil {
		return "", "", err
	}
	buf := make([]byte, 65536)
	deadline := time.Now().Add(c.timeout)
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return "", "", err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			return "", "", err
		}
		gotSeq, rest, pushed, perr := c.parseResponse(string(buf[:n]))
		if perr != nil {
			continue // ignore garbage
		}
		if pushed {
			continue
		}
		if gotSeq != seq {
			continue // stale response
		}
		nl := strings.IndexByte(rest, '\n')
		if nl < 0 {
			return rest, "", nil
		}
		return rest[:nl], rest[nl+1:], nil
	}
}

// parseResponse handles both replies and pushes; pushes are routed to the
// push channel and pushed=true is returned.
func (c *Client) parseResponse(s string) (seq uint64, rest string, pushed bool, err error) {
	if !strings.HasPrefix(s, rpcMagic+" ") {
		return 0, "", false, fmt.Errorf("bad magic")
	}
	s = s[len(rpcMagic)+1:]
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return 0, "", false, fmt.Errorf("bad header")
	}
	seq, err = strconv.ParseUint(s[:sp], 10, 64)
	if err != nil {
		return 0, "", false, err
	}
	rest = s[sp+1:]
	if strings.HasPrefix(rest, "PUSH ") {
		nl := strings.IndexByte(rest, '\n')
		if nl < 0 {
			return 0, "", false, fmt.Errorf("bad push")
		}
		id, err := strconv.ParseUint(strings.TrimSpace(rest[5:nl]), 10, 64)
		if err != nil {
			return 0, "", false, err
		}
		res, err := ParseText(rest[nl+1:])
		if err != nil {
			return 0, "", false, err
		}
		select {
		case c.pushCh <- Push{SubID: id, Result: res}:
		default:
		}
		return 0, "", true, nil
	}
	return seq, rest, false, nil
}

// Exec runs one CQL statement; for SELECT the result is non-nil.
func (c *Client) Exec(cql string) (*Result, error) {
	status, body, err := c.call("EXEC", cql)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(status, "ERR") {
		return nil, fmt.Errorf("hwdb: server: %s", strings.TrimPrefix(status, "ERR "))
	}
	if body == "" {
		return nil, nil
	}
	return ParseText(body)
}

// Subscribe registers a periodic subscription; returns its id.
func (c *Client) Subscribe(cql string) (uint64, error) {
	status, _, err := c.call("SUBSCRIBE", cql)
	if err != nil {
		return 0, err
	}
	if strings.HasPrefix(status, "ERR") {
		return 0, fmt.Errorf("hwdb: server: %s", strings.TrimPrefix(status, "ERR "))
	}
	id, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(status, "OK")), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("hwdb: bad subscribe response %q", status)
	}
	return id, nil
}

// Unsubscribe cancels a subscription.
func (c *Client) Unsubscribe(id uint64) error {
	status, _, err := c.call("UNSUBSCRIBE", strconv.FormatUint(id, 10))
	if err != nil {
		return err
	}
	if strings.HasPrefix(status, "ERR") {
		return fmt.Errorf("hwdb: server: %s", strings.TrimPrefix(status, "ERR "))
	}
	return nil
}

// WaitPush blocks until a push arrives on the socket or the timeout
// elapses. Use after Subscribe when no other calls are in flight.
func (c *Client) WaitPush(timeout time.Duration) (Push, error) {
	select {
	case p := <-c.pushCh:
		return p, nil
	default:
	}
	buf := make([]byte, 65536)
	deadline := time.Now().Add(timeout)
	for {
		select {
		case p := <-c.pushCh:
			return p, nil
		default:
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return Push{}, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			return Push{}, err
		}
		_, _, pushed, perr := c.parseResponse(string(buf[:n]))
		if perr == nil && pushed {
			return <-c.pushCh, nil
		}
	}
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	status, _, err := c.call("PING", "")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(status, "OK") {
		return fmt.Errorf("hwdb: ping: %s", status)
	}
	return nil
}

// ParseText parses the tab-separated wire form back into a Result with
// string-typed cells (clients treat results as display data).
func ParseText(s string) (*Result, error) {
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	res := &Result{}
	first := true
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line == "TRUNCATED" {
			continue
		}
		fields := strings.Split(line, "\t")
		if first {
			res.Cols = fields
			first = false
			continue
		}
		row := make([]Value, len(fields))
		for i, f := range fields {
			row[i] = Str(f)
		}
		res.Rows = append(res.Rows, row)
	}
	if first {
		return nil, fmt.Errorf("hwdb: empty result body")
	}
	return res, sc.Err()
}
