// Package hwdb implements the Homework Database: an active ephemeral stream
// database that stores events into fixed-size in-memory ring buffers, links
// them into tables, and supports queries via a CQL variant able to express
// temporal and relational operations. Applications subscribe to query
// results over a simple UDP-based RPC (see rpc.go) and persist output as
// they see fit — the database itself deliberately forgets.
//
// The standard Homework tables are Flows (periodically observed active
// five-tuples), Links (link-layer information such as MAC address, RSSI and
// retry counts) and Leases (Ethernet-to-IP address mappings).
//
// Concurrency: tables synchronize internally with read-write locks, so
// inserts, cursor reads (Tail) and queries may run concurrently from any
// goroutine; OnInsert hooks fire synchronously on the inserting
// goroutine and must not block. The UDP RPC server runs its own
// goroutines and serves each subscription independently.
package hwdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/packet"
)

// ColType is the type of a column.
type ColType uint8

// Column types supported by the CQL variant.
const (
	TInt ColType = iota + 1
	TReal
	TString
	TBool
	TMAC
	TIP
	TTime // nanoseconds since Unix epoch
)

// String names the type as written in CREATE TABLE.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "integer"
	case TReal:
		return "real"
	case TString:
		return "varchar"
	case TBool:
		return "boolean"
	case TMAC:
		return "mac"
	case TIP:
		return "ip"
	case TTime:
		return "timestamp"
	}
	return "?"
}

// ParseColType parses a type name.
func ParseColType(s string) (ColType, error) {
	switch strings.ToLower(s) {
	case "integer", "int":
		return TInt, nil
	case "real", "double", "float":
		return TReal, nil
	case "varchar", "string", "text":
		return TString, nil
	case "boolean", "bool":
		return TBool, nil
	case "mac":
		return TMAC, nil
	case "ip", "ipaddr":
		return TIP, nil
	case "timestamp", "time":
		return TTime, nil
	}
	return 0, fmt.Errorf("hwdb: unknown column type %q", s)
}

// Value is a single typed cell. Numeric kinds (including MAC, IP, time and
// bool) live in Int/Real so rows stay compact and comparable.
type Value struct {
	Type ColType
	Int  int64
	Real float64
	Str  string
}

// Int64 builds an integer value.
func Int64(v int64) Value { return Value{Type: TInt, Int: v} }

// Float builds a real value.
func Float(v float64) Value { return Value{Type: TReal, Real: v} }

// String builds a string value.
func Str(v string) Value { return Value{Type: TString, Str: v} }

// Bool builds a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Type: TBool, Int: i}
}

// MACVal builds a MAC value.
func MACVal(m packet.MAC) Value {
	var i int64
	for _, b := range m {
		i = i<<8 | int64(b)
	}
	return Value{Type: TMAC, Int: i}
}

// MAC returns the value as a hardware address.
func (v Value) MAC() packet.MAC {
	var m packet.MAC
	x := v.Int
	for i := 5; i >= 0; i-- {
		m[i] = byte(x)
		x >>= 8
	}
	return m
}

// IPVal builds an IP value.
func IPVal(ip packet.IP4) Value { return Value{Type: TIP, Int: int64(ip.Uint32())} }

// IP returns the value as an IPv4 address.
func (v Value) IP() packet.IP4 { return packet.IP4FromUint32(uint32(v.Int)) }

// TimeVal builds a timestamp value.
func TimeVal(t time.Time) Value { return Value{Type: TTime, Int: t.UnixNano()} }

// Time returns the value as a time.
func (v Value) Time() time.Time { return time.Unix(0, v.Int) }

// AsFloat returns a numeric view of the value for aggregation.
func (v Value) AsFloat() float64 {
	if v.Type == TReal {
		return v.Real
	}
	return float64(v.Int)
}

// Equal compares two values; numeric kinds compare across Int/Real.
func (v Value) Equal(o Value) bool {
	if v.Type == TString || o.Type == TString {
		return v.Type == o.Type && v.Str == o.Str
	}
	if v.Type == TReal || o.Type == TReal {
		return v.AsFloat() == o.AsFloat()
	}
	return v.Int == o.Int
}

// Less orders two values of compatible type.
func (v Value) Less(o Value) bool {
	if v.Type == TString && o.Type == TString {
		return v.Str < o.Str
	}
	if v.Type == TReal || o.Type == TReal {
		return v.AsFloat() < o.AsFloat()
	}
	return v.Int < o.Int
}

// String renders the value in CQL literal syntax.
func (v Value) String() string {
	switch v.Type {
	case TInt:
		return strconv.FormatInt(v.Int, 10)
	case TReal:
		return strconv.FormatFloat(v.Real, 'g', -1, 64)
	case TString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case TBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case TMAC:
		return v.MAC().String()
	case TIP:
		return v.IP().String()
	case TTime:
		return "@" + strconv.FormatInt(v.Int, 10)
	}
	return "null"
}

// Text renders the value without string quoting, for tabular output.
func (v Value) Text() string {
	if v.Type == TString {
		return v.Str
	}
	return v.String()
}

// Column is one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
	idx  map[string]int
}

// NewSchema builds a schema from columns, indexing names case-insensitively.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.idx[strings.ToLower(c.Name)] = i
	}
	return s
}

// Index returns the position of a named column.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.idx[strings.ToLower(name)]
	return i, ok
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Row is one tuple plus the insertion timestamp assigned by the table.
type Row struct {
	TS   time.Time
	Vals []Value
}

// Validate checks vals against the schema.
func (s *Schema) Validate(vals []Value) error {
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("hwdb: %d values for %d columns", len(vals), len(s.Cols))
	}
	for i, v := range vals {
		want := s.Cols[i].Type
		if v.Type == want {
			continue
		}
		// Ints widen to reals; everything else must match exactly.
		if want == TReal && v.Type == TInt {
			continue
		}
		return fmt.Errorf("hwdb: column %s wants %s, got %s", s.Cols[i].Name, want, v.Type)
	}
	return nil
}
