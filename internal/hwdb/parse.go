package hwdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/packet"
)

// WindowKind selects the temporal operator applied to a table.
type WindowKind uint8

// Window kinds: the CQL variant's temporal operators.
const (
	WindowAll   WindowKind = iota // entire retained ring
	WindowRows                    // [ROWS n] — last n tuples
	WindowRange                   // [RANGE n UNIT] — tuples within a duration
	WindowNow                     // [NOW] — the most recent tuple
)

// Window is a parsed window specification.
type Window struct {
	Kind WindowKind
	N    int
	Dur  time.Duration
}

// String renders the window in CQL syntax.
func (w Window) String() string {
	switch w.Kind {
	case WindowRows:
		return fmt.Sprintf("[ROWS %d]", w.N)
	case WindowRange:
		return fmt.Sprintf("[RANGE %v]", w.Dur)
	case WindowNow:
		return "[NOW]"
	}
	return ""
}

// AggKind is an aggregate function.
type AggKind uint8

// Aggregates supported in select lists.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[string]AggKind{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

// SelectItem is one output column: either a plain column reference or an
// aggregate over a column ("*" only for count).
type SelectItem struct {
	Agg  AggKind
	Col  string // "*" or column name
	Name string // output label
}

// CompareOp is a WHERE comparison operator.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// Expr is a boolean expression tree over row values.
type Expr interface {
	Eval(s *Schema, r Row) (bool, error)
}

// AndExpr is conjunction.
type AndExpr struct{ L, R Expr }

// Eval implements Expr.
func (e *AndExpr) Eval(s *Schema, r Row) (bool, error) {
	l, err := e.L.Eval(s, r)
	if err != nil || !l {
		return false, err
	}
	return e.R.Eval(s, r)
}

// OrExpr is disjunction.
type OrExpr struct{ L, R Expr }

// Eval implements Expr.
func (e *OrExpr) Eval(s *Schema, r Row) (bool, error) {
	l, err := e.L.Eval(s, r)
	if err != nil || l {
		return l, err
	}
	return e.R.Eval(s, r)
}

// NotExpr is negation.
type NotExpr struct{ E Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(s *Schema, r Row) (bool, error) {
	v, err := e.E.Eval(s, r)
	return !v, err
}

// CmpExpr compares a column with a literal.
type CmpExpr struct {
	Col string
	Op  CompareOp
	Lit Value
}

// Eval implements Expr.
func (e *CmpExpr) Eval(s *Schema, r Row) (bool, error) {
	i, ok := s.Index(e.Col)
	if !ok {
		// "timestamp" pseudo-column compares against the row timestamp.
		if strings.EqualFold(e.Col, "timestamp") {
			return cmp(TimeVal(r.TS), e.Op, e.Lit), nil
		}
		return false, fmt.Errorf("hwdb: unknown column %q", e.Col)
	}
	return cmp(r.Vals[i], e.Op, e.Lit), nil
}

func cmp(v Value, op CompareOp, lit Value) bool {
	switch op {
	case OpEQ:
		return v.Equal(lit)
	case OpNE:
		return !v.Equal(lit)
	case OpLT:
		return v.Less(lit)
	case OpLE:
		return v.Less(lit) || v.Equal(lit)
	case OpGT:
		return lit.Less(v)
	case OpGE:
		return lit.Less(v) || v.Equal(lit)
	}
	return false
}

// OrderBy is an ORDER BY term.
type OrderBy struct {
	Col  string
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Items   []SelectItem
	Table   string
	Win     Window
	Where   Expr
	GroupBy []string
	Order   []OrderBy
	Limit   int // 0 = unlimited

	// Time travel (AS OF @<unix-nanos> | HISTORY @<from> @<to>): when
	// HasAsOf is set the statement evaluates against the table's state at
	// AsOf — rows with TS <= AsOf, with RANGE/NOW windows anchored at AsOf
	// instead of the clock — and when HasHist is set it evaluates over the
	// retained rows with HistFrom <= TS <= HistTo. Both draw from the
	// database's HistorySource when one is attached (the flight recorder's
	// compacted windows) and fall back to the live ring otherwise.
	AsOf     time.Time
	HasAsOf  bool
	HistFrom time.Time
	HistTo   time.Time
	HasHist  bool
}

// InsertStmt is a parsed INSERT INTO t VALUES (...).
type InsertStmt struct {
	Table string
	Vals  []Value
}

// CreateStmt is a parsed CREATE TABLE.
type CreateStmt struct {
	Table    string
	Schema   *Schema
	RingSize int
}

// SubscribeStmt is a parsed SUBSCRIBE <select> EVERY <duration>.
type SubscribeStmt struct {
	Query *SelectStmt
	Every time.Duration
}

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

func (*SelectStmt) stmt()    {}
func (*InsertStmt) stmt()    {}
func (*CreateStmt) stmt()    {}
func (*SubscribeStmt) stmt() {}

// Parse parses one CQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("hwdb: trailing input at %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token has the given kind and, when text is
// non-empty, matches it case-insensitively.
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || strings.EqualFold(t.text, text))
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("hwdb: expected %s, found %s", want, p.peek())
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokIdent, "select"):
		return p.parseSelect()
	case p.at(tokIdent, "insert"):
		return p.parseInsert()
	case p.at(tokIdent, "create"):
		return p.parseCreate()
	case p.at(tokIdent, "subscribe"):
		return p.parseSubscribe()
	}
	return nil, fmt.Errorf("hwdb: expected SELECT, INSERT, CREATE or SUBSCRIBE, found %s", p.peek())
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.next() // SELECT
	st := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.Table = tbl.text

	if p.accept(tokSymbol, "[") {
		w, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		st.Win = w
	}
	switch {
	case p.accept(tokIdent, "as"):
		if _, err := p.expect(tokIdent, "of"); err != nil {
			return nil, err
		}
		ts, err := p.parseTimestamp()
		if err != nil {
			return nil, err
		}
		st.AsOf, st.HasAsOf = ts, true
	case p.accept(tokIdent, "history"):
		from, err := p.parseTimestamp()
		if err != nil {
			return nil, err
		}
		to, err := p.parseTimestamp()
		if err != nil {
			return nil, err
		}
		if to.Before(from) {
			return nil, fmt.Errorf("hwdb: HISTORY range ends (@%d) before it starts (@%d)", to.UnixNano(), from.UnixNano())
		}
		st.HistFrom, st.HistTo, st.HasHist = from, to, true
	}
	if p.accept(tokIdent, "where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokIdent, "group") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, c.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "order") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ob := OrderBy{Col: c.text}
			if p.accept(tokIdent, "desc") {
				ob.Desc = true
			} else {
				p.accept(tokIdent, "asc")
			}
			st.Order = append(st.Order, ob)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "limit") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, fmt.Errorf("hwdb: bad LIMIT %q", n.text)
		}
		st.Limit = lim
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return SelectItem{}, err
	}
	name := strings.ToLower(t.text)
	if agg, ok := aggNames[name]; ok && p.at(tokSymbol, "(") {
		p.next()
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		if col.text == "*" && agg != AggCount {
			return SelectItem{}, fmt.Errorf("hwdb: %s(*) is not valid", name)
		}
		label := fmt.Sprintf("%s(%s)", name, col.text)
		if p.accept(tokIdent, "as") {
			l, err := p.expect(tokIdent, "")
			if err != nil {
				return SelectItem{}, err
			}
			label = l.text
		}
		return SelectItem{Agg: agg, Col: col.text, Name: label}, nil
	}
	label := t.text
	if p.accept(tokIdent, "as") {
		l, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		label = l.text
	}
	return SelectItem{Col: t.text, Name: label}, nil
}

func (p *parser) parseWindow() (Window, error) {
	var w Window
	switch {
	case p.accept(tokIdent, "rows"):
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return w, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v <= 0 {
			return w, fmt.Errorf("hwdb: bad ROWS count %q", n.text)
		}
		w = Window{Kind: WindowRows, N: v}
	case p.accept(tokIdent, "range"):
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return w, err
		}
		v, err := strconv.ParseFloat(n.text, 64)
		if err != nil || v <= 0 {
			return w, fmt.Errorf("hwdb: bad RANGE %q", n.text)
		}
		unit, err := p.expect(tokIdent, "")
		if err != nil {
			return w, err
		}
		d, err := parseUnit(unit.text)
		if err != nil {
			return w, err
		}
		w = Window{Kind: WindowRange, Dur: time.Duration(v * float64(d))}
	case p.accept(tokIdent, "now"):
		w = Window{Kind: WindowNow}
	default:
		return w, fmt.Errorf("hwdb: expected ROWS, RANGE or NOW, found %s", p.peek())
	}
	if _, err := p.expect(tokSymbol, "]"); err != nil {
		return w, err
	}
	return w, nil
}

// parseTimestamp reads an @<unix-nanos> timestamp argument (the same
// literal form WHERE accepts for the timestamp pseudo-column).
func (p *parser) parseTimestamp() (time.Time, error) {
	if _, err := p.expect(tokSymbol, "@"); err != nil {
		return time.Time{}, err
	}
	n, err := p.expect(tokNumber, "")
	if err != nil {
		return time.Time{}, err
	}
	i, err := strconv.ParseInt(n.text, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("hwdb: bad timestamp %q", n.text)
	}
	return time.Unix(0, i), nil
}

func parseUnit(s string) (time.Duration, error) {
	switch strings.ToLower(strings.TrimSuffix(strings.ToLower(s), "s") + "s") {
	case "milliseconds", "mss":
		return time.Millisecond, nil
	case "seconds", "secs":
		return time.Second, nil
	case "minutes", "mins":
		return time.Minute, nil
	case "hours", "hrs":
		return time.Hour, nil
	case "days":
		return 24 * time.Hour, nil
	}
	return 0, fmt.Errorf("hwdb: unknown time unit %q", s)
}

// parseOr handles OR with lower precedence than AND.
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokIdent, "not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

var opNames = map[string]CompareOp{
	"=": OpEQ, "!=": OpNE, "<>": OpNE, "<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE,
}

func (p *parser) parseCmp() (Expr, error) {
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokSymbol, "")
	if err != nil {
		return nil, err
	}
	op, ok := opNames[opTok.text]
	if !ok {
		return nil, fmt.Errorf("hwdb: unknown operator %q", opTok.text)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Col: col.text, Op: op, Lit: lit}, nil
}

func (p *parser) parseLiteral() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Value{}, fmt.Errorf("hwdb: bad number %q", t.text)
			}
			return Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("hwdb: bad number %q", t.text)
		}
		return Int64(i), nil
	case tokString:
		return Str(t.text), nil
	case tokMAC:
		m, err := packet.ParseMAC(t.text)
		if err != nil {
			return Value{}, err
		}
		return MACVal(m), nil
	case tokIP:
		ip, err := packet.ParseIP4(t.text)
		if err != nil {
			return Value{}, err
		}
		return IPVal(ip), nil
	case tokSymbol:
		switch t.text {
		case "-":
			v, err := p.parseLiteral()
			if err != nil {
				return Value{}, err
			}
			switch v.Type {
			case TInt:
				v.Int = -v.Int
			case TReal:
				v.Real = -v.Real
			default:
				return Value{}, fmt.Errorf("hwdb: cannot negate %s", v.Type)
			}
			return v, nil
		case "@": // @<unix-nanos> timestamp literal
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return Value{}, err
			}
			i, err := strconv.ParseInt(n.text, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("hwdb: bad timestamp %q", n.text)
			}
			return Value{Type: TTime, Int: i}, nil
		}
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
	}
	return Value{}, fmt.Errorf("hwdb: expected literal, found %s", t)
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokIdent, "into"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "values"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl.text}
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		st.Vals = append(st.Vals, v)
		if p.accept(tokSymbol, ")") {
			break
		}
		if _, err := p.expect(tokSymbol, ","); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseCreate() (*CreateStmt, error) {
	p.next() // CREATE
	if _, err := p.expect(tokIdent, "table"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ct, err := ParseColType(typ.text)
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: name.text, Type: ct})
		if p.accept(tokSymbol, ")") {
			break
		}
		if _, err := p.expect(tokSymbol, ","); err != nil {
			return nil, err
		}
	}
	st := &CreateStmt{Table: tbl.text, Schema: NewSchema(cols...)}
	if p.accept(tokIdent, "ring") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		size, err := strconv.Atoi(n.text)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("hwdb: bad RING size %q", n.text)
		}
		st.RingSize = size
	}
	return st, nil
}

func (p *parser) parseSubscribe() (*SubscribeStmt, error) {
	p.next() // SUBSCRIBE
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "every"); err != nil {
		return nil, err
	}
	n, err := p.expect(tokNumber, "")
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(n.text, 64)
	if err != nil || v <= 0 {
		return nil, fmt.Errorf("hwdb: bad EVERY interval %q", n.text)
	}
	unit, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d, err := parseUnit(unit.text)
	if err != nil {
		return nil, err
	}
	return &SubscribeStmt{Query: sel, Every: time.Duration(v * float64(d))}, nil
}
