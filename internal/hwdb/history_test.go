package hwdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

// histDB builds a DB with one table "Ticks"(n integer) and five rows at
// one-second intervals starting at the simulated clock's origin.
func histDB(t *testing.T) (*DB, *Table, []time.Time) {
	t.Helper()
	clk := clock.NewSimulated()
	db := New(clk)
	tbl, err := db.CreateTable("Ticks", NewSchema(Column{Name: "n", Type: TInt}), 16)
	if err != nil {
		t.Fatal(err)
	}
	var stamps []time.Time
	for i := 0; i < 5; i++ {
		stamps = append(stamps, clk.Now())
		if err := db.Insert("Ticks", Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	return db, tbl, stamps
}

func TestParseAsOfAndHistory(t *testing.T) {
	st, err := Parse("SELECT * FROM Ticks AS OF @1234")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if !sel.HasAsOf || sel.AsOf.UnixNano() != 1234 {
		t.Fatalf("AS OF parse = %+v", sel)
	}

	st, err = Parse("SELECT n FROM Ticks [RANGE 2 SECONDS] HISTORY @100 @200")
	if err != nil {
		t.Fatal(err)
	}
	sel = st.(*SelectStmt)
	if !sel.HasHist || sel.HistFrom.UnixNano() != 100 || sel.HistTo.UnixNano() != 200 {
		t.Fatalf("HISTORY parse = %+v", sel)
	}
	if sel.Win.Kind != WindowRange {
		t.Fatalf("window lost: %+v", sel.Win)
	}

	for _, bad := range []string{
		"SELECT * FROM Ticks AS OF 1234",        // missing @
		"SELECT * FROM Ticks AS @1",             // AS without OF
		"SELECT * FROM Ticks HISTORY @200 @100", // reversed range
		"SELECT * FROM Ticks HISTORY @100",      // missing upper bound
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestRowsBetween(t *testing.T) {
	_, tbl, stamps := histDB(t)
	if got := len(tbl.RowsBetween(time.Time{}, time.Time{})); got != 5 {
		t.Fatalf("open bounds rows = %d, want 5", got)
	}
	// Inclusive on both ends.
	rows := tbl.RowsBetween(stamps[1], stamps[3])
	if len(rows) != 3 || rows[0].Vals[0].Int != 1 || rows[2].Vals[0].Int != 3 {
		t.Fatalf("RowsBetween[1,3] = %v", rows)
	}
	if got := len(tbl.RowsBetween(stamps[4].Add(time.Hour), time.Time{})); got != 0 {
		t.Fatalf("future from rows = %d, want 0", got)
	}
}

func TestSelectAsOfRingFallback(t *testing.T) {
	db, _, stamps := histDB(t)
	// Without a HistorySource, AS OF falls back to whatever the ring holds.
	res, err := db.Query(fmt.Sprintf("SELECT n FROM Ticks AS OF @%d", stamps[2].UnixNano()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("AS OF rows = %d, want 3", len(res.Rows))
	}
	// RANGE windows anchor at the AS OF instant, not the live clock: one
	// second back from stamps[2] covers rows 1 and 2 only.
	res, err = db.Query(fmt.Sprintf("SELECT n FROM Ticks [RANGE 1 SECONDS] AS OF @%d", stamps[2].UnixNano()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 1 {
		t.Fatalf("RANGE AS OF rows = %v", res.Rows)
	}
}

func TestSelectHistoryAndConvenience(t *testing.T) {
	db, _, stamps := histDB(t)
	res, err := db.Query(fmt.Sprintf("SELECT n FROM Ticks HISTORY @%d @%d",
		stamps[1].UnixNano(), stamps[3].UnixNano()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("HISTORY rows = %d, want 3", len(res.Rows))
	}

	hist, err := db.History("Ticks", stamps[0], stamps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rows) != 2 || hist.Cols[0] != "timestamp" {
		t.Fatalf("History() = cols %v rows %v", hist.Cols, hist.Rows)
	}
	if _, err := db.History("NoSuch", time.Time{}, time.Time{}); err == nil {
		t.Error("History on missing table succeeded")
	}
}

// wideHistory is a HistorySource that remembers every row ever inserted
// into Ticks, beyond the ring.
type wideHistory struct{ rows []Row }

func (w *wideHistory) HistoryRows(table string, from, to time.Time) ([]Row, bool) {
	if table != "Ticks" {
		return nil, false
	}
	var out []Row
	for _, r := range w.rows {
		if !from.IsZero() && r.TS.Before(from) {
			continue
		}
		if !to.IsZero() && r.TS.After(to) {
			continue
		}
		out = append(out, r)
	}
	return out, true
}

func TestHistorySourceWidensRing(t *testing.T) {
	clk := clock.NewSimulated()
	db := New(clk)
	tbl, err := db.CreateTable("Ticks", NewSchema(Column{Name: "n", Type: TInt}), 2)
	if err != nil {
		t.Fatal(err)
	}
	src := &wideHistory{}
	tbl.OnInsert(func(r Row) { src.rows = append(src.rows, r) })
	db.SetHistory(src)

	start := clk.Now()
	for i := 0; i < 6; i++ {
		if err := db.Insert("Ticks", Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	// Ring kept only the last 2 rows, but AS OF sees all six through the
	// attached source.
	res, err := db.Query(fmt.Sprintf("SELECT n FROM Ticks AS OF @%d", clk.Now().UnixNano()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("AS OF via source rows = %d, want 6", len(res.Rows))
	}
	// A table the source declines still falls back to its ring.
	if _, err := db.CreateTable("Other", NewSchema(Column{Name: "n", Type: TInt}), 4); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Other", Int64(7)); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(fmt.Sprintf("SELECT n FROM Other AS OF @%d", clk.Now().UnixNano()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("fallback rows = %d, want 1", len(res.Rows))
	}
	if clk.Now().Before(start) {
		t.Fatal("clock went backwards")
	}
}
