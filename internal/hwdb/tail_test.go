package hwdb

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
)

// newTailTable builds a small ring with a single int column and returns
// an insert helper stamping rows from a simulated clock.
func newTailTable(t *testing.T, cap int) (*Table, func(v int64)) {
	t.Helper()
	clk := clock.NewSimulated()
	tbl := NewTable("T", NewSchema(Column{Name: "v", Type: TInt}), cap)
	return tbl, func(v int64) {
		if err := tbl.Insert(clk.Now(), []Value{Int64(v)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTailWrapExactLoss table-drives the cursor contract around ring
// wrap: lost must equal exactly the rows that wrapped out unread, the
// returned inserts cursor must always advance to the table total, and
// the surviving rows must be the newest Cap() rows oldest-first.
func TestTailWrapExactLoss(t *testing.T) {
	const cap = 4
	cases := []struct {
		name      string
		inserts   int    // total rows inserted before the read
		after     uint64 // cursor position of the read
		wantRows  int
		wantLost  uint64
		wantFirst int64 // value of the first returned row
	}{
		{"caught-up", 3, 3, 0, 0, 0},
		{"within-ring", 4, 1, 3, 0, 2},
		{"exactly-full-ring-behind", 4, 0, 4, 0, 1},
		{"one-past-ring", 5, 0, 4, 1, 2},
		{"cursor-far-behind", 12, 2, 4, 6, 9},
		{"cursor-more-than-cap-behind", 100, 10, 4, 86, 97},
		{"never-read", 25, 0, 4, 21, 22},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl, insert := newTailTable(t, cap)
			for v := int64(1); v <= int64(tc.inserts); v++ {
				insert(v)
			}
			rows, inserts, lost := tbl.Tail(tc.after)
			if len(rows) != tc.wantRows || lost != tc.wantLost {
				t.Fatalf("Tail(%d) = %d rows, lost %d; want %d rows, lost %d",
					tc.after, len(rows), lost, tc.wantRows, tc.wantLost)
			}
			if inserts != uint64(tc.inserts) {
				t.Fatalf("inserts cursor = %d, want %d", inserts, tc.inserts)
			}
			if tc.wantRows > 0 {
				if got := rows[0].Vals[0].Int; got != tc.wantFirst {
					t.Fatalf("first surviving row = %d, want %d", got, tc.wantFirst)
				}
				last := rows[len(rows)-1].Vals[0].Int
				if want := int64(tc.inserts); last != want {
					t.Fatalf("last surviving row = %d, want %d", last, want)
				}
			}
			// The lost accounting must exactly complement the rows read:
			// cursor delta = rows + lost, with nothing double-counted.
			if uint64(len(rows))+lost != inserts-tc.after {
				t.Fatalf("rows %d + lost %d != cursor delta %d",
					len(rows), lost, inserts-tc.after)
			}
		})
	}
}

// TestTailCursorContractAcrossWraps drives a reader across many full
// ring generations: as long as the reader keeps up, no rows are ever
// lost and every row is seen exactly once; the moment it stalls for more
// than a ring's worth, the loss is reported exactly once and the cursor
// still lands on the table total.
func TestTailCursorContractAcrossWraps(t *testing.T) {
	const cap = 8
	tbl, insert := newTailTable(t, cap)

	// Phase 1: 10 generations of the ring, read in odd-sized batches so
	// reads straddle wrap boundaries.
	var cursor uint64
	var seen []int64
	next := int64(1)
	for gen := 0; gen < 10; gen++ {
		for i := 0; i < 5; i++ {
			insert(next)
			next++
		}
		rows, cur, lost := tbl.Tail(cursor)
		if lost != 0 {
			t.Fatalf("gen %d: lost %d rows while keeping up", gen, lost)
		}
		if cur != cursor+uint64(len(rows)) {
			t.Fatalf("gen %d: cursor %d -> %d with %d rows", gen, cursor, cur, len(rows))
		}
		cursor = cur
		for _, r := range rows {
			seen = append(seen, r.Vals[0].Int)
		}
	}
	if len(seen) != 50 {
		t.Fatalf("saw %d rows, want 50", len(seen))
	}
	for i, v := range seen {
		if v != int64(i+1) {
			t.Fatalf("row %d = %d: rows re-ordered or duplicated across wraps", i, v)
		}
	}

	// Phase 2: stall for three full ring generations plus a remainder.
	stall := 3*cap + 3
	for i := 0; i < stall; i++ {
		insert(next)
		next++
	}
	rows, cur, lost := tbl.Tail(cursor)
	if len(rows) != cap {
		t.Fatalf("post-stall read = %d rows, want the full ring %d", len(rows), cap)
	}
	if wantLost := uint64(stall - cap); lost != wantLost {
		t.Fatalf("post-stall lost = %d, want %d", lost, wantLost)
	}
	if cur != uint64(next-1) {
		t.Fatalf("post-stall cursor = %d, want %d", cur, next-1)
	}
	if rows[len(rows)-1].Vals[0].Int != next-1 {
		t.Fatalf("newest row = %d, want %d", rows[len(rows)-1].Vals[0].Int, next-1)
	}
	// Once caught up again, the loss is not re-reported.
	if rows, _, lost := tbl.Tail(cur); len(rows) != 0 || lost != 0 {
		t.Fatalf("caught-up re-read = %d rows, lost %d", len(rows), lost)
	}

	// Stats agree with the cursor contract: dropped counts overwritten
	// rows (ring-full inserts), independent of any reader's losses.
	inserts, dropped := tbl.Stats()
	if inserts != uint64(next-1) {
		t.Fatalf("stats inserts = %d, want %d", inserts, next-1)
	}
	if want := uint64(next-1) - cap; dropped != want {
		t.Fatalf("stats dropped = %d, want %d", dropped, want)
	}
}

// TestRPCSubscribeIdleSkips: a subscription over a quiet table generates
// no datagrams — not on an empty table, and not once the result stops
// changing — but pushes as soon as data (re)appears. Satellite of the
// telemetry PR: idle fleets must not pay per-subscription wakeup traffic.
func TestRPCSubscribeIdleSkips(t *testing.T) {
	clk := clock.Real{} // subscription ticks need a real clock
	db := NewHomework(clk, 1024)
	srv := NewServer(db)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	id, err := cli.Subscribe("SUBSCRIBE SELECT mac, rssi FROM Links [ROWS 5] EVERY 0.01 SECONDS")
	if err != nil {
		t.Fatal(err)
	}

	// Empty table: many periods elapse, zero pushes.
	if p, err := cli.WaitPush(150 * time.Millisecond); err == nil {
		t.Fatalf("idle subscription pushed %+v", p)
	}

	// First row: exactly one push (the result then stops changing).
	if err := db.InsertLink(packet.MustMAC("02:00:00:00:00:01"), -42, 0, 54.0); err != nil {
		t.Fatal(err)
	}
	push, err := cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if push.SubID != id || len(push.Result.Rows) != 1 {
		t.Fatalf("push = %+v", push)
	}
	if p, err := cli.WaitPush(150 * time.Millisecond); err == nil {
		t.Fatalf("unchanged result re-pushed: %+v", p)
	}

	// New data changes the result: pushed again.
	if err := db.InsertLink(packet.MustMAC("02:00:00:00:00:02"), -60, 1, 54.0); err != nil {
		t.Fatal(err)
	}
	push, err = cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(push.Result.Rows) != 2 {
		t.Fatalf("second push rows = %d, want 2", len(push.Result.Rows))
	}

	if err := cli.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
}

// TestRPCSubscribeRangeWindowAges: a RANGE-window subscription must
// still notice rows ageing out with no inserts — the empty-result push
// that tells the display the device went quiet.
func TestRPCSubscribeRangeWindowAges(t *testing.T) {
	clk := clock.Real{}
	db := NewHomework(clk, 1024)
	srv := NewServer(db)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Subscribe(
		"SUBSCRIBE SELECT mac FROM Links [RANGE 0.2 SECONDS] EVERY 0.02 SECONDS"); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertLink(packet.MustMAC("02:00:00:00:00:01"), -42, 0, 54.0); err != nil {
		t.Fatal(err)
	}
	push, err := cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(push.Result.Rows) != 1 {
		t.Fatalf("first push rows = %v", push.Result.Rows)
	}
	// The row ages out of the 0.2s window: one empty push announces it,
	// then the (now stably empty) subscription goes quiet.
	push, err = cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatalf("no push after window aged out: %v", err)
	}
	if len(push.Result.Rows) != 0 {
		t.Fatalf("aged-out push rows = %v", push.Result.Rows)
	}
	if p, err := cli.WaitPush(150 * time.Millisecond); err == nil {
		t.Fatalf("stably-empty subscription pushed %+v", p)
	}
}

// TestTailZeroAndNilSafety pins edge cases: reads at cursor zero on an
// empty table, a cursor beyond the insert count, and a cap-1 ring.
func TestTailZeroAndNilSafety(t *testing.T) {
	tbl, insert := newTailTable(t, 1)
	if rows, cur, lost := tbl.Tail(0); len(rows) != 0 || cur != 0 || lost != 0 {
		t.Fatalf("empty tail = %d rows, cur %d, lost %d", len(rows), cur, lost)
	}
	// A cursor "from the future" (stale table handle) reads nothing.
	if rows, cur, lost := tbl.Tail(99); len(rows) != 0 || cur != 0 || lost != 0 {
		t.Fatalf("future-cursor tail = %d rows, cur %d, lost %d", len(rows), cur, lost)
	}
	for v := int64(1); v <= 7; v++ {
		insert(v)
	}
	rows, cur, lost := tbl.Tail(0)
	if len(rows) != 1 || cur != 7 || lost != 6 {
		t.Fatalf("cap-1 tail = %d rows, cur %d, lost %d", len(rows), cur, lost)
	}
	if rows[0].Vals[0].Int != 7 {
		t.Fatalf("cap-1 survivor = %v", rows[0])
	}
}
