package hwdb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens of the CQL variant.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokMAC
	tokIP
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a CQL statement. MAC (aa:bb:cc:dd:ee:ff) and dotted-quad
// IP literals are recognized at the lexical level so WHERE clauses read
// naturally: WHERE mac = 00:11:22:33:44:55 AND saddr = 192.168.1.10.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isDigit(c):
			if err := l.lexNumberOrAddr(); err != nil {
				return nil, err
			}
		case isHexByteStart(l.src[l.pos:]):
			// Only reached for hex MAC forms starting with a letter (e.g.
			// aa:bb:...); digit-led MACs are handled by lexNumberOrAddr.
			if err := l.lexMAC(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool   { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool { return c == '_' || c == '*' || unicode.IsLetter(rune(c)) }
func isIdentRune(c byte) bool  { return c == '_' || c == '.' || isDigit(c) || unicode.IsLetter(rune(c)) }

// isHexByteStart reports whether s begins like a MAC literal: two hex
// digits followed by a colon.
func isHexByteStart(s string) bool {
	return len(s) >= 3 && isHexDigit(s[0]) && isHexDigit(s[1]) && s[2] == ':'
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("hwdb: unterminated string at %d", start)
}

// lexNumberOrAddr handles integers, reals, dotted-quad IPs and digit-led
// MAC literals.
func (l *lexer) lexNumberOrAddr() error {
	start := l.pos
	if isHexByteStart(l.src[l.pos:]) {
		return l.lexMAC()
	}
	dots := 0
	hasExp := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
		case c == '.':
			dots++
		case c == 'e' || c == 'E':
			hasExp = true
		case (c == '+' || c == '-') && hasExp && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'):
		default:
			goto done
		}
		l.pos++
	}
done:
	text := l.src[start:l.pos]
	if dots == 3 {
		l.emit(token{kind: tokIP, text: text, pos: start})
		return nil
	}
	if dots > 1 {
		return fmt.Errorf("hwdb: bad numeric literal %q at %d", text, start)
	}
	l.emit(token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexMAC() error {
	start := l.pos
	// Expect 6 hex bytes separated by colons.
	for i := 0; i < 6; i++ {
		if l.pos+1 >= len(l.src) || !isHexDigit(l.src[l.pos]) || !isHexDigit(l.src[l.pos+1]) {
			return fmt.Errorf("hwdb: bad MAC literal at %d", start)
		}
		l.pos += 2
		if i < 5 {
			if l.pos >= len(l.src) || l.src[l.pos] != ':' {
				return fmt.Errorf("hwdb: bad MAC literal at %d", start)
			}
			l.pos++
		}
	}
	l.emit(token{kind: tokMAC, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	if l.src[l.pos] == '*' {
		l.pos++
		l.emit(token{kind: tokIdent, text: "*", pos: start})
		return
	}
	for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		l.emit(token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '[', ']', '*', '+', '-', '/', '@':
		l.pos++
		l.emit(token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("hwdb: unexpected character %q at %d", c, start)
}
