package policy

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
)

var kidMAC = packet.MustMAC("02:aa:00:00:00:01")

func kidsPolicy() *Policy {
	return &Policy{
		Name:         "kids-facebook",
		Devices:      []string{kidMAC.String()},
		AllowedSites: []string{"facebook.com"},
		Schedule:     Schedule{Days: []string{"monday", "tuesday", "wednesday", "thursday", "friday"}, From: "16:00", Until: "20:00"},
		RequireKey:   "parent-key",
	}
}

func TestScheduleWeekdays(t *testing.T) {
	s := Schedule{Days: []string{"saturday", "sunday"}}
	sat := time.Date(2011, time.August, 20, 12, 0, 0, 0, time.UTC) // Saturday
	mon := time.Date(2011, time.August, 15, 12, 0, 0, 0, time.UTC) // Monday
	if ok, _ := s.ActiveAt(sat); !ok {
		t.Error("Saturday not active")
	}
	if ok, _ := s.ActiveAt(mon); ok {
		t.Error("Monday active")
	}
}

func TestScheduleTimeOfDay(t *testing.T) {
	s := Schedule{From: "16:00", Until: "20:00"}
	at := func(h, m int) time.Time { return time.Date(2011, 8, 15, h, m, 0, 0, time.UTC) }
	cases := []struct {
		h, m int
		want bool
	}{
		{15, 59, false}, {16, 0, true}, {18, 30, true}, {20, 0, true}, {20, 1, false},
	}
	for _, c := range cases {
		if got, _ := s.ActiveAt(at(c.h, c.m)); got != c.want {
			t.Errorf("ActiveAt(%02d:%02d) = %v, want %v", c.h, c.m, got, c.want)
		}
	}
}

func TestScheduleWrapsMidnight(t *testing.T) {
	s := Schedule{From: "22:00", Until: "06:00"}
	at := func(h int) time.Time { return time.Date(2011, 8, 15, h, 0, 0, 0, time.UTC) }
	if ok, _ := s.ActiveAt(at(23)); !ok {
		t.Error("23:00 not active")
	}
	if ok, _ := s.ActiveAt(at(3)); !ok {
		t.Error("03:00 not active")
	}
	if ok, _ := s.ActiveAt(at(12)); ok {
		t.Error("12:00 active")
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := (&Schedule{Days: []string{"funday"}}).ActiveAt(time.Now()); err == nil {
		t.Error("bad weekday accepted")
	}
	if _, err := (&Schedule{From: "25:00"}).ActiveAt(time.Now()); err == nil {
		t.Error("bad time accepted")
	}
}

func TestPolicyValidate(t *testing.T) {
	good := kidsPolicy()
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bad := []*Policy{
		{},
		{Name: "x"},
		{Name: "x", Devices: []string{"not-a-mac"}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestParsePolicyJSON(t *testing.T) {
	data := []byte(`{
	  "name": "kids-facebook",
	  "devices": ["02:aa:00:00:00:01"],
	  "allowed_sites": ["facebook.com"],
	  "schedule": {"days": ["monday"], "from": "16:00", "until": "20:00"},
	  "require_key": "parent-key"
	}`)
	p, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "kids-facebook" || p.RequireKey != "parent-key" {
		t.Errorf("parsed %+v", p)
	}
	if _, err := ParsePolicy([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestAccessSiteAllowed(t *testing.T) {
	a := Access{NetworkAllowed: true, AllowedSites: []string{"facebook.com"}}
	cases := []struct {
		name string
		want bool
	}{
		{"facebook.com", true},
		{"www.facebook.com", true},
		{"facebook.com.", true},
		{"FACEBOOK.COM", true},
		{"notfacebook.com", false},
		{"facebook.com.evil.example", false},
		{"youtube.com", false},
	}
	for _, c := range cases {
		if got := a.SiteAllowed(c.name); got != c.want {
			t.Errorf("SiteAllowed(%q) = %v, want %v", c.name, got, c.want)
		}
	}
	none := Access{NetworkAllowed: false}
	if none.SiteAllowed("facebook.com") {
		t.Error("blocked device allowed a site")
	}
	open := Access{NetworkAllowed: true}
	if !open.SiteAllowed("anything.example") {
		t.Error("unrestricted device blocked")
	}
}

// engineAt builds an engine whose clock reads a Monday 17:00.
func engineAt(t *testing.T) (*Engine, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated() // 2011-08-15 09:00 UTC, a Monday
	clk.Advance(8 * time.Hour)  // 17:00
	return NewEngine(clk), clk
}

func TestEngineUngovernedDevice(t *testing.T) {
	e, _ := engineAt(t)
	acc := e.AccessFor(kidMAC)
	if acc.Governed || !acc.NetworkAllowed || acc.AllowedSites != nil {
		t.Errorf("access = %+v", acc)
	}
}

func TestEngineKeyMediation(t *testing.T) {
	e, _ := engineAt(t)
	if err := e.Install(kidsPolicy()); err != nil {
		t.Fatal(err)
	}
	acc := e.AccessFor(kidMAC)
	if !acc.Governed || acc.NetworkAllowed {
		t.Errorf("key out: access = %+v", acc)
	}
	e.InsertKey("parent-key")
	acc = e.AccessFor(kidMAC)
	if !acc.NetworkAllowed || len(acc.AllowedSites) != 1 {
		t.Errorf("key in: access = %+v", acc)
	}
	if !acc.SiteAllowed("www.facebook.com") || acc.SiteAllowed("youtube.com") {
		t.Error("site restriction wrong")
	}
	e.RemoveKey("parent-key")
	if acc := e.AccessFor(kidMAC); acc.NetworkAllowed {
		t.Error("access survives key removal")
	}
}

func TestEngineSchedule(t *testing.T) {
	e, clk := engineAt(t)
	_ = e.Install(kidsPolicy())
	e.InsertKey("parent-key")
	if acc := e.AccessFor(kidMAC); !acc.NetworkAllowed {
		t.Error("in-schedule access denied")
	}
	clk.Advance(5 * time.Hour) // 22:00, outside 16:00-20:00
	if acc := e.AccessFor(kidMAC); acc.NetworkAllowed {
		t.Error("out-of-schedule access allowed")
	}
}

func TestEngineMultiplePoliciesUnion(t *testing.T) {
	e, _ := engineAt(t)
	p1 := &Policy{Name: "fb", Devices: []string{kidMAC.String()}, AllowedSites: []string{"facebook.com"}}
	p2 := &Policy{Name: "yt", Devices: []string{kidMAC.String()}, AllowedSites: []string{"youtube.com"}}
	_ = e.Install(p1)
	_ = e.Install(p2)
	acc := e.AccessFor(kidMAC)
	if !acc.SiteAllowed("facebook.com") || !acc.SiteAllowed("youtube.com") {
		t.Errorf("union not applied: %+v", acc)
	}
	if acc.SiteAllowed("bbc.co.uk") {
		t.Error("non-listed site allowed")
	}
	// An unrestricted granting policy lifts all site limits.
	p3 := &Policy{Name: "open", Devices: []string{kidMAC.String()}}
	_ = e.Install(p3)
	if acc := e.AccessFor(kidMAC); acc.AllowedSites != nil {
		t.Errorf("unrestricted policy did not lift limits: %+v", acc)
	}
}

func TestEngineInstallRemoveNotify(t *testing.T) {
	e, _ := engineAt(t)
	changes := 0
	e.OnChange(func() { changes++ })
	_ = e.Install(kidsPolicy())
	e.InsertKey("parent-key")
	e.RemoveKey("parent-key")
	if !e.Remove("kids-facebook") {
		t.Error("remove failed")
	}
	if e.Remove("kids-facebook") {
		t.Error("double remove succeeded")
	}
	if changes != 4 {
		t.Errorf("changes = %d, want 4", changes)
	}
	if len(e.Policies()) != 0 {
		t.Error("policy list not empty")
	}
}
