// Package policy implements the Homework router's interactive policy
// language: the "cartoon" policies composed on the USB policy interface
// (Figure 4 of the paper), such as "the kids can only use Facebook on
// weekdays after they've finished their homework". A policy names a set of
// devices, the web-hosted services they may reach, a schedule, and the
// physical key that mediates it; the engine compiles the active policy set
// into per-device network and DNS access restrictions that the DNS proxy
// and the router's forwarding module enforce.
//
// Concurrency: the engine is mutex-guarded, so installs, removals and
// key events from the control API safely race AccessFor reads from the
// DNS proxy and forwarder on the controller's dispatch goroutine.
// OnChange callbacks fire synchronously on the mutating goroutine.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
)

// Weekday is a JSON-friendly day-of-week set member.
type Weekday string

// Weekday names accepted in policy files.
var weekdayNames = map[string]time.Weekday{
	"sunday": time.Sunday, "monday": time.Monday, "tuesday": time.Tuesday,
	"wednesday": time.Wednesday, "thursday": time.Thursday,
	"friday": time.Friday, "saturday": time.Saturday,
}

// Schedule restricts when a policy grants access. The zero Schedule is
// always active.
type Schedule struct {
	// Days limits activation to the named weekdays (empty = every day).
	Days []string `json:"days,omitempty"`
	// From and Until bound the local time of day, "15:04" format
	// (empty = whole day). From after Until wraps midnight.
	From  string `json:"from,omitempty"`
	Until string `json:"until,omitempty"`
}

// ActiveAt reports whether the schedule admits time t.
func (s *Schedule) ActiveAt(t time.Time) (bool, error) {
	if len(s.Days) > 0 {
		ok := false
		for _, d := range s.Days {
			wd, known := weekdayNames[strings.ToLower(d)]
			if !known {
				return false, fmt.Errorf("policy: unknown weekday %q", d)
			}
			if t.Weekday() == wd {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	if s.From == "" && s.Until == "" {
		return true, nil
	}
	minutes := func(hhmm string, def int) (int, error) {
		if hhmm == "" {
			return def, nil
		}
		var h, m int
		if _, err := fmt.Sscanf(hhmm, "%d:%d", &h, &m); err != nil || h < 0 || h > 23 || m < 0 || m > 59 {
			return 0, fmt.Errorf("policy: bad time of day %q", hhmm)
		}
		return h*60 + m, nil
	}
	from, err := minutes(s.From, 0)
	if err != nil {
		return false, err
	}
	until, err := minutes(s.Until, 24*60-1)
	if err != nil {
		return false, err
	}
	now := t.Hour()*60 + t.Minute()
	if from <= until {
		return now >= from && now <= until, nil
	}
	return now >= from || now <= until, nil // wraps midnight
}

// Policy is one cartoon policy: the panels of Figure 4 serialized.
type Policy struct {
	// Name identifies the policy ("kids-facebook").
	Name string `json:"name"`
	// Devices lists the MAC addresses the policy governs.
	Devices []string `json:"devices"`
	// AllowedSites lists the DNS suffixes the devices may reach. Empty
	// means "network access, no site restriction".
	AllowedSites []string `json:"allowed_sites,omitempty"`
	// Schedule bounds when access is granted.
	Schedule Schedule `json:"schedule,omitempty"`
	// RequireKey names the USB key that must be inserted for the policy
	// to grant access ("" = no physical mediation).
	RequireKey string `json:"require_key,omitempty"`
}

// Validate checks the policy for well-formedness.
func (p *Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("policy: missing name")
	}
	if len(p.Devices) == 0 {
		return fmt.Errorf("policy %s: no devices", p.Name)
	}
	for _, d := range p.Devices {
		if _, err := packet.ParseMAC(d); err != nil {
			return fmt.Errorf("policy %s: %w", p.Name, err)
		}
	}
	if _, err := p.Schedule.ActiveAt(time.Now()); err != nil {
		return fmt.Errorf("policy %s: %w", p.Name, err)
	}
	return nil
}

// ParsePolicy decodes a policy from its JSON file form (the filesystem
// layout carried on the USB key).
func ParsePolicy(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Access is the engine's verdict for one device.
type Access struct {
	// Governed is true when at least one policy names the device.
	Governed bool
	// NetworkAllowed is true when the device may use the network at all.
	NetworkAllowed bool
	// AllowedSites is non-nil when access is limited to these DNS
	// suffixes (nil = unrestricted).
	AllowedSites []string
	// Reason explains the verdict for the control interfaces.
	Reason string
}

// SiteAllowed reports whether name falls within the allowed set.
func (a Access) SiteAllowed(name string) bool {
	if !a.NetworkAllowed {
		return false
	}
	if a.AllowedSites == nil {
		return true
	}
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	for _, s := range a.AllowedSites {
		s = strings.TrimSuffix(strings.ToLower(s), ".")
		if name == s || strings.HasSuffix(name, "."+s) {
			return true
		}
	}
	return false
}

// Engine holds the installed policies and the set of inserted keys, and
// answers access questions. Subscribers are notified on any change so the
// forwarding module can flush now-invalid flow entries.
type Engine struct {
	clk clock.Clock

	mu       sync.Mutex
	policies map[string]*Policy
	keys     map[string]bool
	watchers []func()
}

// NewEngine creates an empty engine.
func NewEngine(clk clock.Clock) *Engine {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Engine{
		clk:      clk,
		policies: make(map[string]*Policy),
		keys:     make(map[string]bool),
	}
}

// OnChange registers fn to run after any policy or key change.
func (e *Engine) OnChange(fn func()) {
	e.mu.Lock()
	e.watchers = append(e.watchers, fn)
	e.mu.Unlock()
}

func (e *Engine) notify() {
	e.mu.Lock()
	ws := append([]func(){}, e.watchers...)
	e.mu.Unlock()
	for _, fn := range ws {
		fn()
	}
}

// Install adds or replaces a policy.
func (e *Engine) Install(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	e.policies[p.Name] = p
	e.mu.Unlock()
	e.notify()
	return nil
}

// Remove deletes a policy by name.
func (e *Engine) Remove(name string) bool {
	e.mu.Lock()
	_, ok := e.policies[name]
	delete(e.policies, name)
	e.mu.Unlock()
	if ok {
		e.notify()
	}
	return ok
}

// Policies returns the installed policies sorted by name.
func (e *Engine) Policies() []*Policy {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Policy, 0, len(e.policies))
	for _, p := range e.policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InsertKey marks a USB key as present (udev insertion event).
func (e *Engine) InsertKey(id string) {
	e.mu.Lock()
	e.keys[id] = true
	e.mu.Unlock()
	e.notify()
}

// RemoveKey marks a USB key as absent.
func (e *Engine) RemoveKey(id string) {
	e.mu.Lock()
	delete(e.keys, id)
	e.mu.Unlock()
	e.notify()
}

// KeyInserted reports whether a key is present.
func (e *Engine) KeyInserted(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.keys[id]
}

// AccessFor computes the effective restriction for a device now. When
// multiple policies govern a device, access is granted if any active
// policy grants it, and the allowed-site sets of granting policies are
// unioned.
func (e *Engine) AccessFor(mac packet.MAC) Access {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clk.Now()
	device := strings.ToLower(mac.String())

	governed := false
	granted := false
	unrestricted := false
	var sites []string
	var reason string
	for _, p := range e.policies {
		match := false
		for _, d := range p.Devices {
			if strings.EqualFold(d, device) {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		governed = true
		if p.RequireKey != "" && !e.keys[p.RequireKey] {
			reason = fmt.Sprintf("policy %s: key %q not inserted", p.Name, p.RequireKey)
			continue
		}
		active, err := p.Schedule.ActiveAt(now)
		if err != nil || !active {
			reason = fmt.Sprintf("policy %s: outside schedule", p.Name)
			continue
		}
		granted = true
		if len(p.AllowedSites) == 0 {
			unrestricted = true
		} else {
			sites = append(sites, p.AllowedSites...)
		}
		reason = fmt.Sprintf("policy %s: access granted", p.Name)
	}
	if !governed {
		return Access{Governed: false, NetworkAllowed: true, Reason: "no policy"}
	}
	if !granted {
		return Access{Governed: true, NetworkAllowed: false, Reason: reason}
	}
	if unrestricted {
		return Access{Governed: true, NetworkAllowed: true, Reason: reason}
	}
	sort.Strings(sites)
	return Access{Governed: true, NetworkAllowed: true, AllowedSites: sites, Reason: reason}
}
