// Parental-controls: the Figure-4 scenario — "the kids can only use
// Facebook on weekdays after they've finished their homework" — built
// with the cartoon policy interface, carried on a USB key, and enforced
// by the DNS proxy and the datapath.
package main

import (
	"fmt"
	"log"
	"os"

	homework "repro"
)

func main() {
	cfg := homework.DefaultConfig()
	cfg.AutoPermit = true
	rt, err := homework.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	kid, err := rt.AddHost("kids-tablet", "02:aa:00:00:00:02", true, homework.Pos{X: 6})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.JoinHost(kid); err != nil {
		log.Fatal(err)
	}
	adult, err := rt.AddHost("adult-laptop", "02:aa:00:00:00:03", false, homework.Pos{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.JoinHost(adult); err != nil {
		log.Fatal(err)
	}

	// Compose the cartoon and write it onto a "USB stick" (a directory).
	cartoon := &homework.PolicyCartoon{
		Name: "kids-facebook",
		Who:  []homework.CartoonDevice{{Label: "the kids", MAC: kid.MAC.String()}},
		What: []string{"facebook.com"},
		WhenDays: []string{
			"monday", "tuesday", "wednesday", "thursday", "friday",
		},
		WhenFrom: "00:00", WhenUntil: "23:59",
		KeyID: "parent-key",
	}
	fmt.Print(cartoon.Render())
	usbRoot, err := os.MkdirTemp("", "hw-usb-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(usbRoot)
	if err := cartoon.WriteToUSB(usbRoot + "/usb0"); err != nil {
		log.Fatal(err)
	}

	// The udev stand-in notices the key and installs the policy.
	mon := homework.NewUSBMonitor(usbRoot, rt)
	if err := mon.Scan(); err != nil {
		log.Fatal(err)
	}

	run := func() (kidBytes, adultBytes uint64) {
		kidApp := homework.NewApp(homework.AppWeb, "facebook.com", 20_000)
		kid.AddApp(kidApp)
		adultApp := homework.NewApp(homework.AppWeb, "example.com", 20_000)
		adult.AddApp(adultApp)
		rxBefore, _, _ := rt.Upstream.Counters()
		for i := 0; i < 12; i++ {
			rt.Net.Step(0.25)
			if err := rt.Settle(); err != nil {
				log.Fatal(err)
			}
		}
		rxAfter, _, _ := rt.Upstream.Counters()
		_ = rxBefore
		_ = rxAfter
		return kidApp.SentBytes(), adultApp.SentBytes()
	}

	fmt.Println("key inserted (responsible adult present):")
	kb, ab := run()
	acc := rt.Policy.AccessFor(kid.MAC)
	fmt.Printf("  kid:   %v — sent %d bytes to facebook.com\n", acc.Reason, kb)
	fmt.Printf("  adult: unrestricted — sent %d bytes\n\n", ab)

	// Pull the key: restrictions apply again.
	if err := os.RemoveAll(usbRoot + "/usb0"); err != nil {
		log.Fatal(err)
	}
	if err := mon.Scan(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("key removed:")
	_, denied := rt.Forwarder.Counters()
	kb, ab = run()
	_, denied2 := rt.Forwarder.Counters()
	acc = rt.Policy.AccessFor(kid.MAC)
	fmt.Printf("  kid:   %v — router denied %d new flow(s)\n", acc.Reason, denied2-denied)
	fmt.Printf("  adult: unrestricted — sent %d bytes\n", ab)
	st := rt.DNS.Stats()
	fmt.Printf("\nDNS proxy: %d queries, %d denied, %d answered\n",
		st.Queries, st.Denied, st.Answered)
}
