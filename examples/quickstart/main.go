// Quickstart: bring up the Homework router, join one device, generate a
// little web traffic and print what the measurement plane saw.
package main

import (
	"fmt"
	"log"

	homework "repro"
)

func main() {
	cfg := homework.DefaultConfig()
	cfg.AutoPermit = true // no operator in this example
	rt, err := homework.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	// A laptop joins over DHCP. Under the Homework scheme it receives a
	// /32 lease with the router as gateway and DNS, so every flow it
	// opens crosses the router's OpenFlow datapath.
	laptop, err := rt.AddHost("laptop", "02:aa:00:00:00:01", true, homework.Pos{X: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.JoinHost(laptop); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laptop joined: ip=%s lease=/%d\n", laptop.IP(), laptop.LeaseMask())

	// Browse for a few simulated seconds.
	laptop.AddApp(homework.NewApp(homework.AppWeb, "example.com", 50_000))
	for i := 0; i < 16; i++ {
		rt.Net.Step(0.25)
		if err := rt.Settle(); err != nil {
			log.Fatal(err)
		}
	}
	rt.PollMeasure()

	// Ask the Homework Database what happened, with the same CQL the
	// UDP RPC carries.
	res, err := rt.DB.Query(
		"SELECT mac, daddr, dport, sum(bytes) AS bytes FROM Flows GROUP BY mac, daddr, dport ORDER BY bytes DESC LIMIT 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop flows (from hwdb):")
	fmt.Print(res.Text())

	// And render the Figure-1 display.
	view := homework.NewBandwidthView(rt.DB)
	out, err := view.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}
