// Bandwidth-monitor: the Figure-1 scenario as a library consumer would
// build it — a busy home with six devices, the per-device per-protocol
// display refreshed once a simulated second, plus a remote hwdb
// subscription over the UDP RPC (how the paper's iPhone app consumed the
// measurement plane).
package main

import (
	"fmt"
	"log"
	"time"

	homework "repro"
)

func main() {
	cfg := homework.DefaultConfig()
	cfg.AutoPermit = true
	rt, err := homework.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	type dev struct {
		name, mac string
		wireless  bool
		pos       homework.Pos
		app       *homework.App
	}
	home := []dev{
		{"toms-mac-air", "02:aa:00:00:00:01", true, homework.Pos{X: 3}, homework.NewApp(homework.AppVideo, "youtube.com", 120_000)},
		{"kids-tablet", "02:aa:00:00:00:02", true, homework.Pos{X: 6}, homework.NewApp(homework.AppWeb, "facebook.com", 40_000)},
		{"xbox", "02:aa:00:00:00:03", false, homework.Pos{}, homework.NewApp(homework.AppP2P, "tracker.example", 80_000)},
		{"kitchen-radio", "02:aa:00:00:00:04", true, homework.Pos{X: 8, Y: 3}, homework.NewApp(homework.AppVoIP, "voip.example.com", 12_000)},
		{"thermostat", "02:aa:00:00:00:05", true, homework.Pos{X: 10}, homework.NewApp(homework.AppIoT, "iot.example.com", 1_000)},
		{"work-laptop", "02:aa:00:00:00:06", false, homework.Pos{}, homework.NewApp(homework.AppWeb, "bbc.co.uk", 60_000)},
	}
	for _, d := range home {
		h, err := rt.AddHost(d.name, d.mac, d.wireless, d.pos)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.JoinHost(h); err != nil {
			log.Fatal(err)
		}
		h.AddApp(d.app)
	}

	// A remote visualization subscribes over the UDP RPC, exactly as the
	// paper's satellite devices did.
	cli, err := homework.DialDB(rt.HwdbServer.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	subID, err := cli.Subscribe(
		"SUBSCRIBE SELECT mac, sum(bytes) AS bytes FROM Flows [RANGE 5 SECONDS] GROUP BY mac EVERY 0.5 SECONDS")
	if err != nil {
		log.Fatal(err)
	}

	view := homework.NewBandwidthView(rt.DB)
	view.Window = 5 * time.Second
	for second := 1; second <= 5; second++ {
		for i := 0; i < 4; i++ {
			rt.Net.Step(0.25)
			if err := rt.Settle(); err != nil {
				log.Fatal(err)
			}
		}
		rt.PollMeasure()
		out, err := view.Render()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- t=%ds ---\n%s\n", second, out)
	}

	// Show one push received by the remote subscriber.
	push, err := cli.WaitPush(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote subscriber (sub %d) received over UDP RPC:\n%s",
		push.SubID, push.Result.Text())
	_ = subID
}
