// Fleet-monitor: the paper's bandwidth display (Figure 1) scaled from
// one home to a fleet — the end-to-end proof of the telemetry layer. An
// 8-home fleet runs mixed traffic; every hwdb insert streams through the
// push-based hub into the live folder, so the per-home board below is
// read instantly (no fold pass) after each step. A remote monitor
// subscribes over UDP — the same HWDB/1 client the paper's iPhone app
// spoke — and receives per-home DELTA pushes: only homes whose counters
// moved, nothing when the fleet idles.
package main

import (
	"fmt"
	"log"
	"time"

	homework "repro"
)

func main() {
	clk := homework.NewSimulatedClock()
	f := homework.NewFleet(homework.FleetConfig{Clock: clk, Seed: 9})
	defer f.Stop()

	// Eight homes, two devices each, with the app mix skewed so the
	// board has a visible heavy hitter.
	apps := []struct {
		kind homework.AppKind
		name string
		rate int
	}{
		{homework.AppVideo, "svc-video.example", 250_000},
		{homework.AppWeb, "svc-web.example", 40_000},
		{homework.AppVoIP, "svc-voip.example", 12_000},
		{homework.AppIoT, "svc-iot.example", 2_000},
	}
	homes, err := f.AddHomes(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range homes {
		for _, a := range apps {
			h.Router.Upstream.AddZone(a.name, homework.IP4{203, 0, 113, byte(10 + h.ID)})
		}
		for d := 0; d < 2; d++ {
			host, err := h.Join("", d == 0, homework.Pos{X: 2 + float64(d)})
			if err != nil {
				log.Fatal(err)
			}
			a := apps[(int(h.ID)+d)%len(apps)]
			host.AddApp(homework.NewApp(a.kind, a.name, a.rate))
		}
	}

	// The streaming endpoint plus a remote subscriber: per-home deltas
	// every simulated second, pushed only when something changed.
	srv, err := homework.ServeFleetTelemetry(f, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := homework.DialDB(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	subID, err := cli.Subscribe("FLEET EVERY 1 SECONDS")
	if err != nil {
		log.Fatal(err)
	}

	tel := f.Telemetry()
	for second := 1; second <= 4; second++ {
		for i := 0; i < 4; i++ {
			if err := f.Step(0.25); err != nil {
				log.Fatal(err)
			}
		}
		// The live board: read straight off the folder, no fold pass.
		tot := f.Totals()
		fmt.Printf("--- t=%ds  homes=%d hosts=%d  %d flows  %d bytes  fleet %.0f B/s ---\n",
			second, tot.Homes, tot.Hosts, tot.Flows, tot.Bytes,
			tel.FleetRate().BytesPerSec)
		for _, ht := range tel.HomeTotals() {
			if ht.Rate.BytesPerSec == 0 {
				continue
			}
			fmt.Printf("  home-%-2d %8.0f B/s  |", ht.Home, ht.Rate.BytesPerSec)
			for _, dr := range tel.DeviceRates(ht.Home) {
				fmt.Printf("  %s %.0f B/s", dr.MAC, dr.BytesPerSec)
			}
			fmt.Println()
		}
	}

	// What the remote monitor saw: one delta push (per-home rows, only
	// homes that moved since its last push).
	push, err := cli.WaitPush(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremote subscriber (sub %d) received delta push over UDP:\n%s",
		push.SubID, push.Result.Text())
	_ = subID

	// And the same endpoint answers fleet-wide CQL against the live view.
	res, err := cli.Exec("SELECT home, sum(bytes) AS bytes FROM FleetStats GROUP BY home")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet view over EXEC (SELECT home, sum(bytes) ... GROUP BY home):\n%s", res.Text())
}
