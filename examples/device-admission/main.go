// Device-admission: the Figure-3 scenario — unknown devices request
// leases, appear on the situated control display, and the user drags
// them into permitted or denied, exercising the REST control API.
package main

import (
	"fmt"
	"log"

	homework "repro"
)

func main() {
	cfg := homework.DefaultConfig() // AutoPermit off: approval required
	rt, err := homework.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.API.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}

	// Three unknown devices send DHCP DISCOVERs; with no operator
	// decision yet they stay pending (no lease).
	var hosts []*homework.Host
	for i, name := range []string{"new-phone", "smart-tv", "neighbours-laptop"} {
		mac := fmt.Sprintf("02:bb:00:00:00:0%d", i+1)
		h, err := rt.AddHost(name, mac, true, homework.Pos{X: float64(3 + i)})
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.JoinHost(h); err != nil {
			log.Fatal(err)
		}
		hosts = append(hosts, h)
	}

	ctl := homework.NewDHCPControl("http://" + rt.API.Addr())
	out, err := ctl.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices detected, awaiting the user:")
	fmt.Println(out)

	// The user interrogates the first device, annotates it, and drags it
	// to permitted; the neighbour's laptop goes to denied.
	if err := ctl.Annotate(hosts[0].MAC.String(), "Sam's new phone"); err != nil {
		log.Fatal(err)
	}
	if err := ctl.DragTo(hosts[0].MAC.String(), "permitted"); err != nil {
		log.Fatal(err)
	}
	if err := ctl.DragTo(hosts[2].MAC.String(), "denied"); err != nil {
		log.Fatal(err)
	}

	// The permitted device retries DHCP and now binds; the denied one is
	// NAKed on its next attempt.
	for _, h := range []*homework.Host{hosts[0], hosts[2]} {
		h.StartDHCP()
		if err := rt.JoinHost(h); err != nil {
			log.Fatal(err)
		}
	}

	out, err = ctl.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after the user's drag gestures:")
	fmt.Println(out)
	fmt.Printf("new-phone bound: %v (ip %s)\n", hosts[0].Bound(), hosts[0].IP())
	fmt.Printf("neighbours-laptop denied: %v\n", hosts[2].Denied())

	// Every admission decision also landed in hwdb's Leases table.
	res, err := rt.DB.Query("SELECT action, mac, hostname FROM Leases")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLeases events (hwdb):")
	fmt.Print(res.Text())
}
