GO ?= go

.PHONY: all build test race bench soak

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# soak runs the time-compressed chaos soak gate under the race detector:
# two simulated days of scheduled faults over a 16-home fleet with the
# health/remediation loop live, bounded wall clock — once on the default
# single-shard fleet and once across four shard engines (the TestChaosSoak
# prefix matches both), so the federated telemetry accounting is gated
# under churn too. The failing seed is printed by the test; reproduce with
#   go test -race -run TestChaosSoak ./internal/chaos
soak:
	$(GO) test -race -run TestChaosSoak -v -timeout 8m ./internal/chaos

# bench runs the scenario-matrix perf trajectory — fleet step scaling
# (single-shard, 4-shard in-process and 4-shard over the shardrpc control
# plane), settle latency, live telemetry, the
# traced-vs-untraced overhead pair, and the flight-recorder
# attached-vs-detached overhead pair — and records the measured numbers as
# BENCH_10.json. The JSON is committed so the trajectory stays comparable
# across PRs; CI gates that it parses and carries the headline benchmarks.
BENCH_PATTERN := ^(BenchmarkFleetStep|BenchmarkSettleLatency|BenchmarkFleetTelemetry|BenchmarkTraceOverhead|BenchmarkFlightOverhead)$$

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1s -timeout 30m . | tee bench_10.txt
	$(GO) run ./cmd/benchjson < bench_10.txt > BENCH_10.json
	@rm -f bench_10.txt
	@echo "wrote BENCH_10.json"
