GO ?= go

.PHONY: all build test race bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scenario-matrix perf trajectory — fleet step scaling,
# settle latency, live telemetry, and the traced-vs-untraced overhead
# pair — and records the measured numbers as BENCH_6.json. The JSON is
# committed so the trajectory stays comparable across PRs; CI gates that
# it parses and carries the headline benchmarks.
BENCH_PATTERN := ^(BenchmarkFleetStep|BenchmarkSettleLatency|BenchmarkFleetTelemetry|BenchmarkTraceOverhead)$$

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1s -timeout 30m . | tee bench_6.txt
	$(GO) run ./cmd/benchjson < bench_6.txt > BENCH_6.json
	@rm -f bench_6.txt
	@echo "wrote BENCH_6.json"
