// Package homework is the public API of the Homework router platform: a
// reproduction of "Supporting Novel Home Network Management Interfaces
// with OpenFlow and NOX" (Mortier et al., SIGCOMM 2011).
//
// The platform is a home router built as an OpenFlow datapath under a
// NOX-style controller, whose modules — a DHCP server that hands out /32
// leases so every flow is visible at the router, a DNS proxy that ties
// flows to the names that produced them, and a RESTful control API —
// combine with the hwdb streaming measurement database to support novel
// management interfaces: per-device bandwidth visualization, a physical
// LED artifact, a drag-to-permit DHCP control display, and a USB-key-
// mediated visual policy language.
//
// Quickstart:
//
//	rt, err := homework.NewRouter(homework.DefaultConfig())
//	...
//	err = rt.Start()
//	h, _ := rt.AddHost("laptop", "02:aa:00:00:00:01", true, homework.Pos{X: 3})
//	_ = rt.JoinHost(h)
//	h.AddApp(homework.NewApp(homework.AppWeb, "example.com", 100_000))
//	rt.Net.Step(1.0)
//	view := homework.NewBandwidthView(rt.DB)
//	text, _ := view.Render()
package homework

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/ui"
	"repro/internal/usbmon"
)

// Router is the assembled platform: datapath, controller with the DHCP,
// DNS-proxy, control-API and forwarding modules, hwdb, policy engine and
// the simulated home network.
type Router = core.Router

// Config parameterizes the platform.
type Config = core.Config

// DefaultConfig is a 192.168.1.0/24 home with the paper's /32 leases.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewRouter assembles a platform; call Start on the result.
func NewRouter(cfg Config) (*Router, error) { return core.New(cfg) }

// TransportKind selects the controller↔datapath control-plane channel
// (Config.Transport).
type TransportKind = core.TransportKind

// Control-plane transports: in-process channel passing (the default; no
// serialization on the hot path) or the classic loopback-TCP secure
// channel. See docs/ARCHITECTURE.md for the message flow under each.
const (
	TransportInProcess = core.TransportInProcess
	TransportTCP       = core.TransportTCP
)

// Host is a simulated home device.
type Host = netsim.Host

// Pos is a position in the home, metres from the router.
type Pos = netsim.Pos

// App generates application traffic from a host.
type App = netsim.App

// AppKind selects a traffic profile.
type AppKind = netsim.AppKind

// Traffic profiles for NewApp.
const (
	AppWeb   = netsim.AppWeb
	AppVideo = netsim.AppVideo
	AppVoIP  = netsim.AppVoIP
	AppP2P   = netsim.AppP2P
	AppIoT   = netsim.AppIoT
	AppDNS   = netsim.AppDNS
)

// NewApp builds a traffic application targeting a hostname or literal IP.
func NewApp(kind AppKind, target string, rateBps int) *App {
	return netsim.NewApp(kind, target, rateBps)
}

// DB is the Homework Database.
type DB = hwdb.DB

// DBClient is a UDP RPC client for a remote hwdb.
type DBClient = hwdb.Client

// DialDB connects to an hwdb server's UDP RPC address.
func DialDB(addr string) (*DBClient, error) { return hwdb.Dial(addr) }

// Policy is one cartoon policy.
type Policy = policy.Policy

// Schedule bounds when a policy grants access.
type Schedule = policy.Schedule

// MAC is an Ethernet address.
type MAC = packet.MAC

// IP4 is an IPv4 address.
type IP4 = packet.IP4

// ParseMAC parses a colon-separated Ethernet address.
func ParseMAC(s string) (MAC, error) { return packet.ParseMAC(s) }

// ParseIP4 parses a dotted-quad IPv4 address.
func ParseIP4(s string) (IP4, error) { return packet.ParseIP4(s) }

// BandwidthView is the Figure-1 per-device per-protocol display model.
type BandwidthView = ui.BandwidthView

// NewBandwidthView builds a bandwidth view over a database.
func NewBandwidthView(db *DB) *BandwidthView { return ui.NewBandwidthView(db) }

// Artifact is the Figure-2 physical LED artifact model.
type Artifact = ui.Artifact

// NewArtifact builds an artifact display for the device with the given MAC.
func NewArtifact(db *DB, mac MAC) *Artifact { return ui.NewArtifact(db, mac) }

// Artifact modes.
const (
	ModeSignal    = ui.ModeSignal
	ModeBandwidth = ui.ModeBandwidth
	ModeDHCP      = ui.ModeDHCP
)

// RenderFrame draws an artifact LED frame as text.
func RenderFrame(leds []ui.LED) string { return ui.RenderFrame(leds) }

// DHCPControl is the Figure-3 drag-to-permit display model.
type DHCPControl = ui.DHCPControl

// NewDHCPControl builds a control display over the control API at baseURL.
func NewDHCPControl(baseURL string) *DHCPControl { return ui.NewDHCPControl(baseURL) }

// PolicyCartoon is the Figure-4 visual policy builder.
type PolicyCartoon = ui.PolicyCartoon

// CartoonDevice is one figure in a cartoon's "who" panel.
type CartoonDevice = ui.CartoonDevice

// USBMonitor watches a mount root for policy keys (the udev stand-in).
type USBMonitor = usbmon.Monitor

// NewUSBMonitor builds a monitor that drives a router's policy engine.
func NewUSBMonitor(root string, rt *Router) *USBMonitor {
	return usbmon.New(root, rt.Policy)
}

// Fleet orchestrates many independent Homework homes in one process. It
// is the fleet's placement control plane — a coordinator that places
// homes across shard-local engines (FleetConfig.Shards), owns the
// spawn/drain/migrate/restart/replace lifecycle, and federates every
// shard's telemetry into one fleet-wide view. Declarative workload
// scenarios drive it end to end (see cmd/hwfleetd and
// docs/ARCHITECTURE.md "Fleet control plane").
type Fleet = fleet.Fleet

// FleetConfig parameterizes a fleet.
type FleetConfig = fleet.Config

// FleetHome is one managed home within a fleet.
type FleetHome = fleet.Home

// FleetScenario declares a fleet workload (homes, hosts, app mix, churn).
type FleetScenario = fleet.Scenario

// FleetReport summarizes a scenario run.
type FleetReport = fleet.Report

// NewFleet creates an empty fleet; add homes with AddHome/AddHomes.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// DefaultFleetScenario is a small mixed-workload fleet scenario.
func DefaultFleetScenario() FleetScenario { return fleet.DefaultScenario() }

// RunFleetScenario executes a scenario end-to-end and reports; logf (may
// be nil) receives progress lines.
func RunFleetScenario(s FleetScenario, logf func(string, ...any)) (*FleetReport, error) {
	r, err := fleet.NewRunner(s)
	if err != nil {
		return nil, err
	}
	r.Logf = logf
	rep, err := r.Run()
	r.Close()
	return rep, err
}

// FleetTelemetry is the live fleet-wide telemetry folder: continuously
// maintained totals, windowed per-home and per-device rates, and the
// FleetStats view database, all readable without a fold pass. Reach it
// via Fleet.Telemetry(); it is the federated global folder, fed by every
// shard engine's hub, so it reads as one coherent fleet regardless of
// shard count.
type FleetTelemetry = telemetry.Folder

// FleetRate is a windowed byte/packet throughput estimate.
type FleetRate = telemetry.Rate

// FleetTelemetryServer streams fleet-wide aggregates over UDP: CQL EXEC
// against the FleetStats view, a STATS snapshot verb, and FLEET
// subscriptions that push per-home deltas only when counters move. It
// speaks the HWDB/1 framing, so DialDB clients drive it unchanged.
type FleetTelemetryServer = telemetry.Server

// ServeFleetTelemetry starts a streaming telemetry endpoint for a fleet
// on addr (e.g. "127.0.0.1:0"); close it with its Close method.
func ServeFleetTelemetry(f *Fleet, addr string) (*FleetTelemetryServer, error) {
	srv := telemetry.NewServer(f.Telemetry())
	if err := srv.Serve(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Clock abstracts time; SimulatedClock is deterministic for tests.
type Clock = clock.Clock

// SimulatedClock is a manually advanced clock.
type SimulatedClock = clock.Simulated

// NewSimulatedClock returns a simulated clock at a fixed epoch.
func NewSimulatedClock() *SimulatedClock { return clock.NewSimulated() }
